type stats = {
  mutable populated_1g : int;
  mutable populated_2m : int;
  mutable populated_4k : int;
  mutable ops_received : int;
  mutable invalidated : int;
  mutable left_in_place : int;
  mutable first_touch_maps : int;
  mutable policy_switches : int;
  mutable splinters : int;
  mutable promotes : int;
  mutable superpage_migrates : int;
}

(* Graceful-degradation machinery.  Migration failures back off and
   retry; persistent failures land in a bounded per-domain retry queue
   drained in later epochs; a circuit breaker suspends the Carrefour
   heuristics when the recent failure rate is too high and, after
   repeated trips, degrades the domain to a static placement. *)
let max_migrate_retries = 3
let backoff_base = 2e-5 (* seconds; doubles per retry *)
let pending_cap = 4096
let drain_budget = 64 (* deferred migrations retried per epoch *)
let breaker_min_attempts = 8
let breaker_threshold = 0.5
let breaker_cooldown = 30 (* epochs the breaker stays open per trip *)
let reconcile_period = 50 (* epochs between P2M<->free-list sweeps *)
let promote_period = 10 (* epochs between promotion scans *)
let promote_budget = 2 (* extents coalesced per scan *)
let promote_scan_extents = 512 (* extents examined per scan *)
let evac_budget = 512 (* frames moved off a failing node per epoch *)

type degrade = {
  mutable migrate_retries : int;
  mutable backoff_time : float;
  mutable deferred : int;
  mutable drained : int;
  mutable dropped_deferred : int;
  mutable fallback_maps : int;
  mutable breaker_trips : int;
  mutable breaker_level : int;
  mutable lost_batches : int;
  mutable lost_ops : int;
  mutable hypercall_retries : int;
  mutable reconcile_sweeps : int;
  mutable reconciled : int;
  mutable ecc_ce : int;
  mutable ecc_ue : int;
  mutable offlined : int;
  mutable evacuated : int;
  mutable evac_epochs : int;
}

let fresh_degrade () =
  {
    migrate_retries = 0;
    backoff_time = 0.0;
    deferred = 0;
    drained = 0;
    dropped_deferred = 0;
    fallback_maps = 0;
    breaker_trips = 0;
    breaker_level = 0;
    lost_batches = 0;
    lost_ops = 0;
    hypercall_retries = 0;
    reconcile_sweeps = 0;
    reconciled = 0;
    ecc_ce = 0;
    ecc_ue = 0;
    offlined = 0;
    evacuated = 0;
    evac_epochs = 0;
  }

type t = {
  system : Xen.System.t;
  domain : Xen.Domain.t;
  mutable spec : Spec.t;
  rng : Sim.Rng.t;
  stats : stats;
  mutable rr_cursor : int;  (* round-robin cursor over home nodes *)
  mutable carrefour : Carrefour.System_component.t option;
  carrefour_config : Carrefour.User_component.config;
  degrade : degrade;
  pending : (Memory.Page.pfn * Numa.Topology.node) Queue.t;
  superpages : bool;
  pt : Xen.Pt.t option;  (* page-table placement; Some iff the walk
                            model or replication is enabled *)
  mutable promote_cursor : int;  (* rotating extent cursor of the scan *)
  mutable epoch : int;
  mutable breaker_attempts : int;  (* migration window since last evaluation *)
  mutable breaker_failures : int;
  mutable breaker_open_until : int;  (* epoch; -1 = closed *)
  mutable breaker_was_open : bool;  (* for the cooldown-close trace event *)
  mutable replay_dedup : Guest.Pv_queue.dedup option;  (* lazy, P2M-sized *)
  mutable inv_buf : int array;  (* invalidate-winner scratch, grows on demand *)
  drain_pfns : int array;  (* drain_budget-sized drain scratch *)
  drain_nodes : int array;
  drain_src : int array;
  group_pfns : int array;
  group_mfns : int array;
  (* Node-evacuation engine (RAS): while [evac_node >= 0] every epoch
     moves up to [evac_budget] resident frames off that node. *)
  mutable evac_node : int;  (* -1 = no evacuation in progress *)
  mutable evac_cursor : int;  (* pfn scan cursor, persists across epochs *)
  mutable evac_rr : int;  (* round-robin cursor over surviving nodes *)
  mutable evac_backoff : int;  (* consecutive ENOMEM epochs, for backoff *)
  mutable evac_started : int;  (* epoch the evacuation was requested *)
  evac_pfns : int array;  (* evac_budget-sized scratch *)
  evac_dst : int array;
  evac_group : int array;
  evac_mfns : int array;
}

(* Trace emission for this domain's stream; a branch-and-return no-op
   while no session is installed on the system. *)
let emit ?pfn ?node ?arg t cls =
  match t.system.Xen.System.obs with
  | None -> ()
  | Some stream ->
      Obs.Stream.emit ~domain:t.domain.Xen.Domain.id ?pfn ?node ?arg stream cls

let fresh_stats () =
  {
    populated_1g = 0;
    populated_2m = 0;
    populated_4k = 0;
    ops_received = 0;
    invalidated = 0;
    left_in_place = 0;
    first_touch_maps = 0;
    policy_switches = 0;
    splinters = 0;
    promotes = 0;
    superpage_migrates = 0;
  }

(* First online node ≥ 0 in numeric order, for the last-resort fallback
   when every home node has left the mask. *)
let any_online_node topo =
  let nodes = Numa.Topology.node_count topo in
  let rec go n =
    if n >= nodes then None
    else if Numa.Topology.node_online topo n then Some n
    else go (n + 1)
  in
  go 0

let next_home_node t =
  let topo = t.system.Xen.System.topo in
  let home = t.domain.Xen.Domain.home_nodes in
  let k = Array.length home in
  (* Round-robin over the home nodes, skipping any that left the
     dynamic node mask.  The cursor advances exactly once per call when
     every home node is online, so healthy runs are bit-identical to
     the pre-RAS placement. *)
  let rec pick attempts =
    let node = home.(t.rr_cursor mod k) in
    t.rr_cursor <- t.rr_cursor + 1;
    if Numa.Topology.node_online topo node then node
    else if attempts + 1 < k then pick (attempts + 1)
    else begin
      match any_online_node topo with
      | Some n -> n
      | None -> node (* whole machine failing; allocation will fail anyway *)
    end
  in
  pick 0

let map_or_fail t pfn node =
  match Internal.map_page t.system t.domain ~pfn ~node with
  | Ok _ -> ()
  | Error `Enomem -> invalid_arg "Manager: machine out of memory while populating domain"

(* Real 4 KiB frames in one superpage extent: sp_frames simulated
   frames, each standing for page_scale real frames. *)
let sp_frames_4k t =
  Xen.P2m.sp_frames t.domain.Xen.Domain.p2m
  * Memory.Machine.page_scale t.system.Xen.System.machine

(* Record one demotion done on this policy's behalf (the P2M keeps its
   own cumulative counter; this is the policy-visible accounting plus
   trace/metrics).  The time is charged by the caller: the fault path,
   the page-ops replay and the migration path each fold it into their
   own cost totals. *)
let note_splinter t ~pfn =
  t.stats.splinters <- t.stats.splinters + 1;
  emit ~pfn ~arg:(Xen.P2m.sp_frames t.domain.Xen.Domain.p2m) t Obs.Event.Splinter;
  if Obs.Metrics.enabled () then Obs.Metrics.incr "policies.superpage.splinters"

(* Eager 4 KiB round-robin over the home nodes (Linux interleave).

   The placement is per-frame (pfn i goes to home node i mod k — that
   is the point of the policy), but the machine frames backing it need
   not be carved one by one: each node keeps a cache of frames peeled
   off a 2 MiB buddy block, refilled on demand, so the per-frame buddy
   walk (order-0 set lookup, removal, split chain) is paid once per
   block instead of once per frame.  Same node per pfn as the naive
   loop, ~2 MiB/4 KiB times fewer allocator operations.  When no block
   is free on a node the per-frame fallback path takes over for that
   frame, preserving the old exhaustion behaviour. *)
let populate_round_4k t =
  let machine = t.system.Xen.System.machine in
  let p2m = t.domain.Xen.Domain.p2m in
  let frames = t.domain.Xen.Domain.mem_frames in
  let nodes = Numa.Topology.node_count t.system.Xen.System.topo in
  let order = Memory.Machine.order_2m machine in
  let block = 1 lsl order in
  let cache_mfn = Array.make nodes 0 in
  let cache_left = Array.make nodes 0 in
  for pfn = 0 to frames - 1 do
    let node = next_home_node t in
    (if cache_left.(node) > 0 then begin
       let mfn = cache_mfn.(node) in
       cache_mfn.(node) <- mfn + 1;
       cache_left.(node) <- cache_left.(node) - 1;
       Xen.P2m.set p2m pfn ~mfn ~writable:true
     end
     else
       match Memory.Machine.alloc_on machine ~node ~order with
       | Some base ->
           Memory.Machine.split_block machine ~mfn:base ~order;
           cache_mfn.(node) <- base + 1;
           cache_left.(node) <- block - 1;
           Xen.P2m.set p2m pfn ~mfn:base ~writable:true
       | None -> map_or_fail t pfn node);
    t.stats.populated_4k <- t.stats.populated_4k + 1
  done;
  (* Return unused cached frames; they were split to order 0 already. *)
  for node = 0 to nodes - 1 do
    while cache_left.(node) > 0 do
      Memory.Machine.free machine ~mfn:cache_mfn.(node) ~order:0;
      cache_mfn.(node) <- cache_mfn.(node) + 1;
      cache_left.(node) <- cache_left.(node) - 1
    done
  done

(* Xen's historical allocator: 1 GiB regions round-robin over the home
   nodes, falling back to 2 MiB then 4 KiB chunks under fragmentation.
   The first and last guest GiB are always fragmented (BIOS and I/O
   holes), so they take the fine-grained path. *)
let populate_round_1g t =
  let machine = t.system.Xen.System.machine in
  let frames = t.domain.Xen.Domain.mem_frames in
  let scale = Memory.Machine.page_scale machine in
  let per_1g = max 1 (Memory.Page.frames_per_1g / scale) in
  let per_2m = max 1 (Memory.Page.frames_per_2m / scale) in
  let order_1g = Memory.Machine.order_1g machine in
  let order_2m = Memory.Machine.order_2m machine in
  let spans = (frames + per_1g - 1) / per_1g in
  (* Under superpages, an aligned contiguous block is installed as
     2 MiB P2M entries rather than per-frame ones — this is where
     round-1G earns its TLB reach.  Both the 1 GiB and the 2 MiB
     population paths hand us blocks aligned to the extent size (buddy
     blocks are naturally aligned), so the per-frame tail only appears
     on fragmented remainders. *)
  let p2m = t.domain.Xen.Domain.p2m in
  let sp = Xen.P2m.sp_frames p2m in
  let map_block pfn0 mfn0 count =
    if t.superpages && sp > 1 && pfn0 mod sp = 0 && mfn0 mod sp = 0 then begin
      let chunks = count / sp in
      for c = 0 to chunks - 1 do
        Xen.P2m.map_superpage p2m ~pfn:(pfn0 + (c * sp)) ~mfn:(mfn0 + (c * sp)) ~writable:true
      done;
      for i = chunks * sp to count - 1 do
        Xen.P2m.set p2m (pfn0 + i) ~mfn:(mfn0 + i) ~writable:true
      done
    end
    else
      for i = 0 to count - 1 do
        Xen.P2m.set p2m (pfn0 + i) ~mfn:(mfn0 + i) ~writable:true
      done
  in
  let populate_4k pfn0 count =
    for i = 0 to count - 1 do
      map_or_fail t (pfn0 + i) (next_home_node t);
      t.stats.populated_4k <- t.stats.populated_4k + 1
    done
  in
  let populate_2m pfn0 count =
    let chunks = count / per_2m in
    for c = 0 to chunks - 1 do
      let pfn = pfn0 + (c * per_2m) in
      match Memory.Machine.alloc_on machine ~node:(next_home_node t) ~order:order_2m with
      | Some mfn ->
          Memory.Machine.split_block machine ~mfn ~order:order_2m;
          map_block pfn mfn per_2m;
          t.stats.populated_2m <- t.stats.populated_2m + 1
      | None -> populate_4k pfn per_2m
    done;
    let rest = count mod per_2m in
    if rest > 0 then populate_4k (pfn0 + (chunks * per_2m)) rest
  in
  for g = 0 to spans - 1 do
    let pfn0 = g * per_1g in
    let count = min per_1g (frames - pfn0) in
    let fragmented = g = 0 || g = spans - 1 || count < per_1g in
    if fragmented then populate_2m pfn0 count
    else begin
      match Memory.Machine.alloc_on machine ~node:(next_home_node t) ~order:order_1g with
      | Some mfn ->
          Memory.Machine.split_block machine ~mfn ~order:order_1g;
          map_block pfn0 mfn count;
          t.stats.populated_1g <- t.stats.populated_1g + 1
      | None -> populate_2m pfn0 count
    end
  done

let statically_degraded t = t.degrade.breaker_level >= 2

let push_pending t ~pfn ~node =
  if not (statically_degraded t) then begin
    if Queue.length t.pending >= pending_cap then begin
      (* Bounded queue: shed the oldest debt rather than grow without
         limit under a persistent fault. *)
      ignore (Queue.pop t.pending);
      t.degrade.dropped_deferred <- t.degrade.dropped_deferred + 1
    end;
    Queue.push (pfn, node) t.pending;
    t.degrade.deferred <- t.degrade.deferred + 1;
    emit ~pfn ~node t Obs.Event.Migrate_defer;
    if Obs.Metrics.enabled () then Obs.Metrics.incr "policies.migrate.deferred"
  end

let install_fault_handler t =
  t.domain.Xen.Domain.fault_handler <-
    Some
      (fun pfn ~cpu ->
        let node =
          if statically_degraded t then next_home_node t
          else
            match t.spec.Spec.placement with
            | Spec.First_touch ->
                let touched = Numa.Topology.node_of_cpu t.system.Xen.System.topo cpu in
                (* First-touch on a failing node falls back to the
                   round-robin pick: the memory must land somewhere that
                   is still in the mask. *)
                if Numa.Topology.node_online t.system.Xen.System.topo touched then touched
                else next_home_node t
            | Spec.Round_4k | Spec.Round_1g -> next_home_node t
        in
        emit ~pfn ~node ~arg:cpu t Obs.Event.Page_fault;
        match Internal.map_page t.system t.domain ~pfn ~node with
        | Ok mfn ->
            t.stats.first_touch_maps <- t.stats.first_touch_maps + 1;
            let actual = Memory.Machine.node_of_mfn t.system.Xen.System.machine mfn in
            emit ~pfn ~node:actual ~arg:cpu t Obs.Event.First_touch;
            if Obs.Metrics.enabled () then Obs.Metrics.incr "policies.fault.first_touch_maps";
            if actual <> node then begin
              (* The wanted node was exhausted and the allocator fell
                 back elsewhere.  Record the misplacement debt: a later
                 drain re-migrates the page home. *)
              t.degrade.fallback_maps <- t.degrade.fallback_maps + 1;
              push_pending t ~pfn ~node
            end
        | Error `Enomem -> ())

let make_carrefour t = Carrefour.System_component.create t.system t.domain

let attach ?(carrefour_config = Carrefour.User_component.default_config) ?(superpages = false)
    ?(pt_walk = false) ?(replicate_pt = false) system domain ~boot ~rng =
  let pt =
    if pt_walk || replicate_pt then begin
      let p2m = domain.Xen.Domain.p2m in
      let replicate_nodes =
        if replicate_pt then Array.copy domain.Xen.Domain.home_nodes else [||]
      in
      Some
        (Xen.Pt.create ~replicate_nodes
           ~home_node:domain.Xen.Domain.home_nodes.(0)
           ~frames:(Xen.P2m.frames p2m) ~sp_frames:(Xen.P2m.sp_frames p2m) ())
    end
    else None
  in
  let t =
    {
      system;
      domain;
      spec = boot;
      rng;
      stats = fresh_stats ();
      rr_cursor = 0;
      carrefour = None;
      carrefour_config;
      degrade = fresh_degrade ();
      pending = Queue.create ();
      superpages;
      pt;
      promote_cursor = 0;
      epoch = 0;
      breaker_attempts = 0;
      breaker_failures = 0;
      breaker_open_until = -1;
      breaker_was_open = false;
      replay_dedup = None;
      inv_buf = [||];
      drain_pfns = Array.make drain_budget 0;
      drain_nodes = Array.make drain_budget 0;
      drain_src = Array.make drain_budget 0;
      group_pfns = Array.make drain_budget 0;
      group_mfns = Array.make drain_budget 0;
      evac_node = -1;
      evac_cursor = 0;
      evac_rr = 0;
      evac_backoff = 0;
      evac_started = 0;
      evac_pfns = Array.make evac_budget 0;
      evac_dst = Array.make evac_budget 0;
      evac_group = Array.make evac_budget 0;
      evac_mfns = Array.make evac_budget 0;
    }
  in
  (* Install the replica-maintenance hook before the boot population so
     the mirrors see the primary's whole update stream from its first
     entry.  The boot-time propagation cost is charged like any other
     update; the engine wipes the account after setup, exactly as it
     does for the population itself. *)
  (match pt with
  | Some pt when Xen.Pt.replicated pt ->
      let costs = system.Xen.System.costs in
      let account = domain.Xen.Domain.account in
      let replicas = Xen.Pt.replica_count pt in
      Xen.P2m.set_on_update domain.Xen.Domain.p2m
        (Some
           (fun u ->
             Xen.Pt.apply pt u;
             account.Xen.Domain.pt_replica_ops <- account.Xen.Domain.pt_replica_ops + 1;
             account.Xen.Domain.pt_replica_time <-
               account.Xen.Domain.pt_replica_time
               +.
               match u with
               | Xen.P2m.Cleared _ | Xen.P2m.Splintered _ ->
                   Xen.Costs.pt_replica_invalidate_time costs ~replicas
               | Xen.P2m.Set _ | Xen.P2m.Superpage_mapped _ | Xen.P2m.Promoted _ ->
                   Xen.Costs.pt_replica_update_time costs ~replicas))
  | Some _ | None -> ());
  (match boot.Spec.placement with
  | Spec.Round_4k -> populate_round_4k t
  | Spec.Round_1g -> populate_round_1g t
  | Spec.First_touch -> ());
  if boot.Spec.carrefour then t.carrefour <- Some (make_carrefour t);
  install_fault_handler t;
  domain.Xen.Domain.policy_name <- Spec.name boot;
  t

let domain t = t.domain
let system t = t.system
let spec t = t.spec
let stats t = t.stats

let charge_hypercall t id time =
  let time =
    if t.system.Xen.System.faults.Xen.System.hypercall_transient () then begin
      (* Transient failure: the guest retries immediately, paying the
         entry cost a second time for one logical hypercall. *)
      t.degrade.hypercall_retries <- t.degrade.hypercall_retries + 1;
      time +. t.system.Xen.System.costs.Xen.Costs.hypercall_entry
    end
    else time
  in
  let account = t.domain.Xen.Domain.account in
  account.Xen.Domain.hypercall_count <- account.Xen.Domain.hypercall_count + 1;
  account.Xen.Domain.hypercall_time <- account.Xen.Domain.hypercall_time +. time;
  Xen.Hypercall.record ?obs:t.system.Xen.System.obs ~domain:t.domain.Xen.Domain.id
    t.domain.Xen.Domain.hypercalls id ~time

let set_policy t new_spec =
  if not (Spec.runtime_selectable new_spec) then
    Error "round-1g is boot-only; the hypercall cannot select it"
  else begin
    charge_hypercall t Xen.Hypercall.Set_numa_policy
      t.system.Xen.System.costs.Xen.Costs.hypercall_entry;
    t.stats.policy_switches <- t.stats.policy_switches + 1;
    t.spec <- new_spec;
    (match (new_spec.Spec.carrefour, t.carrefour) with
    | true, None -> t.carrefour <- Some (make_carrefour t)
    | false, Some _ -> t.carrefour <- None
    | true, Some _ | false, None -> ());
    t.domain.Xen.Domain.policy_name <- Spec.name new_spec;
    Ok ()
  end

(* Replay dedup state, created on first use: one generation stamp per
   guest-physical frame, shared by every batch this domain replays. *)
let replay_dedup t =
  match t.replay_dedup with
  | Some d -> d
  | None ->
      let d = Guest.Pv_queue.dedup ~frames:(Xen.P2m.frames t.domain.Xen.Domain.p2m) in
      t.replay_dedup <- Some d;
      d

let ensure_inv_buf t n =
  if Array.length t.inv_buf < n then begin
    let cap = ref (max 128 (Array.length t.inv_buf)) in
    while !cap < n do
      cap := !cap * 2
    done;
    t.inv_buf <- Array.make !cap 0
  end

(* Apply the invalidate-winners of one replayed batch through the
   batched P2M path: one sort, one splinter per touched extent, freed
   frames returned as we go, amortised cost.  Returns the time to add
   to the hypercall's bill. *)
let invalidate_winners t ~n =
  let costs = t.system.Xen.System.costs in
  let time = ref 0.0 in
  let bstats =
    Xen.P2m.invalidate_batch t.domain.Xen.Domain.p2m
      ~on_splinter:(fun pfn ->
        (* A first-touch invalidation landing inside a 2 MiB superpage
           demotes the whole extent: every 4 KiB entry pays the
           write-protect→remap cost before the one entry can be cleared
           (the paper's granularity tension made concrete).  The batch
           sort guarantees this fires at most once per extent. *)
        note_splinter t ~pfn;
        time := !time +. Xen.Costs.splinter_time costs ~frames_4k:(sp_frames_4k t))
      ~on_free:(fun _pfn mfn ->
        Memory.Machine.free t.system.Xen.System.machine ~mfn ~order:0)
      t.inv_buf ~n
  in
  t.stats.invalidated <- t.stats.invalidated + bstats.Xen.P2m.applied;
  time := !time +. Xen.Costs.invalidate_batch_time costs ~frames:bstats.Xen.P2m.applied;
  emit ~arg:bstats.Xen.P2m.applied t Obs.Event.P2m_batch;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr "xen.p2m.batches";
    Obs.Metrics.observe "xen.p2m.batch_frames" (float_of_int bstats.Xen.P2m.applied)
  end;
  !time

let page_ops_replay t ops =
  let costs = t.system.Xen.System.costs in
  let n = Array.length ops in
  t.stats.ops_received <- t.stats.ops_received + n;
  let time = ref (Xen.Costs.page_ops_batch_time costs ~ops:n) in
  let first_touch = t.spec.Spec.placement = Spec.First_touch in
  if first_touch then begin
    ensure_inv_buf t n;
    let k = ref 0 in
    Guest.Pv_queue.replay ~dedup:(replay_dedup t) ops ~f:(fun pfn action ->
        match action with
        | `Invalidate ->
            t.inv_buf.(!k) <- pfn;
            incr k
        | `Leave -> t.stats.left_in_place <- t.stats.left_in_place + 1);
    if !k > 0 then time := !time +. invalidate_winners t ~n:!k
  end
  else
    Guest.Pv_queue.replay ~dedup:(replay_dedup t) ops ~f:(fun _pfn action ->
        match action with
        | `Invalidate -> ()
        | `Leave -> t.stats.left_in_place <- t.stats.left_in_place + 1);
  charge_hypercall t Xen.Hypercall.Page_ops !time;
  !time

let page_ops_hypercall t ops =
  let costs = t.system.Xen.System.costs in
  if t.system.Xen.System.faults.Xen.System.batch_lost (Array.length ops) then begin
    (* Batch lost in transit: the guest paid the entry cost but the
       hypervisor never replays the ops.  Released pages keep their
       stale P2M entries until the reconciliation sweep heals them. *)
    t.degrade.lost_batches <- t.degrade.lost_batches + 1;
    t.degrade.lost_ops <- t.degrade.lost_ops + Array.length ops;
    charge_hypercall t Xen.Hypercall.Page_ops costs.Xen.Costs.hypercall_entry;
    costs.Xen.Costs.hypercall_entry
  end
  else page_ops_replay t ops

let release_batch = 128

let release_free_pages t pfns =
  let rec go pfns acc =
    match pfns with
    | [] -> acc
    | _ ->
        let now, rest =
          let rec split n acc = function
            | [] -> (List.rev acc, [])
            | x :: xs when n > 0 -> split (n - 1) (x :: acc) xs
            | xs -> (List.rev acc, xs)
          in
          split release_batch [] pfns
        in
        let ops = Array.of_list (List.map (fun pfn -> Guest.Pv_queue.Release pfn) now) in
        go rest (acc +. page_ops_hypercall t ops)
  in
  go pfns 0.0

(* Whole-range release (the policy-switch free-list report): same
   queue-sized Release chunks as [release_free_pages] over a list, but
   the pfns are consecutive and distinct by construction, so no op
   values, no list cells and no dedup pass are materialised — each
   chunk goes straight into the batched invalidate.  Chunk-level
   behaviour (one Page_ops hypercall each, the in-transit loss draw,
   the cost model) is identical to the list path. *)
let release_free_range t ~first ~count =
  let costs = t.system.Xen.System.costs in
  let total = ref 0.0 in
  let off = ref 0 in
  while !off < count do
    let n = min release_batch (count - !off) in
    let chunk_time =
      if t.system.Xen.System.faults.Xen.System.batch_lost n then begin
        t.degrade.lost_batches <- t.degrade.lost_batches + 1;
        t.degrade.lost_ops <- t.degrade.lost_ops + n;
        charge_hypercall t Xen.Hypercall.Page_ops costs.Xen.Costs.hypercall_entry;
        costs.Xen.Costs.hypercall_entry
      end
      else begin
        t.stats.ops_received <- t.stats.ops_received + n;
        let time = ref (Xen.Costs.page_ops_batch_time costs ~ops:n) in
        if t.spec.Spec.placement = Spec.First_touch then begin
          ensure_inv_buf t n;
          for i = 0 to n - 1 do
            t.inv_buf.(i) <- first + !off + i
          done;
          time := !time +. invalidate_winners t ~n
        end;
        charge_hypercall t Xen.Hypercall.Page_ops !time;
        !time
      end
    in
    total := !total +. chunk_time;
    off := !off + n
  done;
  !total

let carrefour t = t.carrefour

let breaker_open t = t.breaker_open_until >= 0 && t.epoch < t.breaker_open_until

let charge_backoff t attempt =
  let pause = backoff_base *. float_of_int (1 lsl attempt) in
  let account = t.domain.Xen.Domain.account in
  account.Xen.Domain.migrate_time <- account.Xen.Domain.migrate_time +. pause;
  t.degrade.backoff_time <- t.degrade.backoff_time +. pause

(* [Internal.migrate_page] splinters (and charges for) a surrounding
   superpage when it actually moves the page; observe the transition
   here so the policy stats and the trace record it. *)
let migrate_tracked t ~pfn ~node =
  let was_sp = Xen.P2m.is_superpage t.domain.Xen.Domain.p2m pfn in
  let r = Internal.migrate_page t.system t.domain ~pfn ~node in
  (match r with
  | Ok _ when was_sp && not (Xen.P2m.is_superpage t.domain.Xen.Domain.p2m pfn) ->
      note_splinter t ~pfn
  | Ok _ | Error _ -> ());
  r

let migrate_resilient t ~pfn ~node =
  t.breaker_attempts <- t.breaker_attempts + 1;
  emit ~pfn ~node t Obs.Event.Migrate_start;
  let rec go attempt =
    match migrate_tracked t ~pfn ~node with
    | Ok _ -> true
    | Error `Not_mapped -> false (* page gone; not a memory-pressure signal *)
    | Error `Enomem ->
        if attempt < max_migrate_retries then begin
          t.degrade.migrate_retries <- t.degrade.migrate_retries + 1;
          emit ~pfn ~node ~arg:(attempt + 1) t Obs.Event.Migrate_retry;
          if Obs.Metrics.enabled () then Obs.Metrics.incr "policies.migrate.retries";
          charge_backoff t attempt;
          go (attempt + 1)
        end
        else begin
          t.breaker_failures <- t.breaker_failures + 1;
          push_pending t ~pfn ~node;
          false
        end
  in
  go 0

let degrade_statically t =
  t.degrade.breaker_level <- 2;
  t.carrefour <- None;
  Queue.clear t.pending;
  t.domain.Xen.Domain.policy_name <- Spec.name t.spec ^ "+degraded:round-1g"

let evaluate_breaker t =
  if t.breaker_attempts >= breaker_min_attempts then begin
    let rate = float_of_int t.breaker_failures /. float_of_int t.breaker_attempts in
    if rate > breaker_threshold then begin
      t.degrade.breaker_trips <- t.degrade.breaker_trips + 1;
      t.breaker_open_until <- t.epoch + breaker_cooldown;
      t.breaker_was_open <- true;
      emit ~arg:t.degrade.breaker_trips t Obs.Event.Breaker_trip;
      if Obs.Metrics.enabled () then Obs.Metrics.incr "policies.breaker.trips";
      (* Escalation ladder: repeated trips mean the fault is not
         transient — shed the expensive heuristics first, then give up
         on dynamic placement entirely. *)
      if t.degrade.breaker_trips >= 4 then begin
        let was = t.degrade.breaker_level in
        degrade_statically t;
        if was < 2 then emit ~arg:2 t Obs.Event.Breaker_escalate
      end
      else if t.degrade.breaker_trips >= 2 && t.degrade.breaker_level < 1 then begin
        t.degrade.breaker_level <- 1;
        emit ~arg:1 t Obs.Event.Breaker_escalate
      end
    end;
    t.breaker_attempts <- 0;
    t.breaker_failures <- 0
  end

(* Drain attempts feed the breaker window too: once Carrefour has been
   shed the retry queue is the only remaining migration traffic, and a
   queue that keeps failing is exactly the signal to stop deferring and
   fall back to static placement.

   The epoch's budget is popped in one go and grouped by
   (current node, wanted node) pair, each group migrated as one batched
   remap ([Internal.migrate_group]) paying the amortised per-pair cost
   instead of per-page setup.  A transient ENOMEM stops the drain for
   the epoch exactly as before: the failing page and everything not yet
   attempted go back on the queue. *)
let drain_pending t =
  if (not (breaker_open t)) && not (Queue.is_empty t.pending) then begin
    let nodes = Numa.Topology.node_count t.system.Xen.System.topo in
    let popped = ref 0 in
    while !popped < drain_budget && not (Queue.is_empty t.pending) do
      let pfn, node = Queue.pop t.pending in
      t.drain_pfns.(!popped) <- pfn;
      t.drain_nodes.(!popped) <- node;
      incr popped;
      ()
    done;
    let n = !popped in
    (* Classify: expired debts and already-home pages resolve here;
       real moves record their source node for grouping. *)
    for i = 0 to n - 1 do
      t.drain_src.(i) <-
        (match Internal.node_of_pfn t.system t.domain t.drain_pfns.(i) with
        | None ->
            (* Released while deferred: debt expired. *)
            t.breaker_attempts <- t.breaker_attempts + 1;
            -1
        | Some src ->
            if src = t.drain_nodes.(i) then begin
              t.breaker_attempts <- t.breaker_attempts + 1;
              t.degrade.drained <- t.degrade.drained + 1;
              emit ~pfn:t.drain_pfns.(i) ~node:src t Obs.Event.Migrate_drain;
              if Obs.Metrics.enabled () then Obs.Metrics.incr "policies.migrate.drained";
              -1
            end
            else src)
    done;
    let stopped = ref false in
    let requeue_from group k =
      (* Unmigrated tail of the failing group, then every group not yet
         attempted, in (src, dst) order. *)
      for i = k to Array.length group - 1 do
        Queue.push group.(i) t.pending
      done
    in
    let pair = ref 0 in
    while (not !stopped) && !pair < nodes * nodes do
      let src = !pair / nodes and dst = !pair mod nodes in
      if src <> dst then begin
        let g = ref 0 in
        for i = 0 to n - 1 do
          if t.drain_src.(i) = src && t.drain_nodes.(i) = dst then begin
            t.group_pfns.(!g) <- t.drain_pfns.(i);
            incr g
          end
        done;
        let gn = !g in
        if gn > 0 then begin
          match
            Internal.migrate_group t.system t.domain
              ~on_splinter:(fun pfn -> note_splinter t ~pfn)
              ~pfns:t.group_pfns ~scratch_mfns:t.group_mfns ~n:gn ~node:dst ()
          with
          | `Done moved ->
              t.breaker_attempts <- t.breaker_attempts + moved;
              t.degrade.drained <- t.degrade.drained + moved;
              for i = 0 to moved - 1 do
                emit ~pfn:t.group_pfns.(i) ~node:dst t Obs.Event.Migrate_drain
              done;
              if Obs.Metrics.enabled () then
                Obs.Metrics.incr ~by:moved "policies.migrate.drained"
          | `Enomem moved ->
              (* Node still exhausted: requeue the rest and stop for
                 this epoch. *)
              t.breaker_attempts <- t.breaker_attempts + moved + 1;
              t.breaker_failures <- t.breaker_failures + 1;
              t.degrade.drained <- t.degrade.drained + moved;
              for i = 0 to moved - 1 do
                emit ~pfn:t.group_pfns.(i) ~node:dst t Obs.Event.Migrate_drain
              done;
              if Obs.Metrics.enabled () then
                Obs.Metrics.incr ~by:moved "policies.migrate.drained";
              requeue_from (Array.init (gn - moved) (fun i -> (t.group_pfns.(moved + i), dst))) 0;
              (* Groups after this one in (src, dst) order. *)
              for i = 0 to n - 1 do
                let s = t.drain_src.(i) and d = t.drain_nodes.(i) in
                if s >= 0 && (s * nodes) + d > !pair then
                  Queue.push (t.drain_pfns.(i), d) t.pending
              done;
              stopped := true
        end
      end;
      incr pair
    done
  end

(* ------------------------------------------------------------------ *)
(* Hardware RAS: ECC handling and node evacuation                      *)
(* ------------------------------------------------------------------ *)

(* Correctable ECC: the memory controller scrubbed the frame in place.
   The guest only pays a latency blip (modelled as one page's
   write-protect/remap worth of stall) and the heat event is traced. *)
let handle_ecc_ce t ~pfn =
  if pfn < 0 || pfn >= Xen.P2m.frames t.domain.Xen.Domain.p2m then ()
  else
  match Internal.node_of_pfn t.system t.domain pfn with
  | None -> ()
  | Some node ->
      let costs = t.system.Xen.System.costs in
      let account = t.domain.Xen.Domain.account in
      account.Xen.Domain.migrate_time <-
        account.Xen.Domain.migrate_time +. costs.Xen.Costs.page_migrate_fixed;
      t.degrade.ecc_ce <- t.degrade.ecc_ce + 1;
      emit ~pfn ~node t Obs.Event.Ecc_ce;
      if Obs.Metrics.enabled () then Obs.Metrics.incr "policies.ras.ecc_ce"

(* Uncorrectable ECC: the backing mfn is poisoned.  Offline it (it
   retires the moment it is freed), copy the guest frame onto a fresh
   mfn and remap — splinter-aware, because the remap of one 4 KiB entry
   demotes a surrounding 2 MiB extent first. *)
let handle_ecc_ue t ~pfn =
  let machine = t.system.Xen.System.machine in
  let p2m = t.domain.Xen.Domain.p2m in
  if pfn < 0 || pfn >= Xen.P2m.frames p2m then ()
  else
  match Xen.P2m.get p2m pfn with
  | Xen.P2m.Invalid -> ()
  | Xen.P2m.Mapped { mfn = old_mfn; writable } ->
      let old_node = Memory.Machine.node_of_mfn machine old_mfn in
      (match Memory.Machine.offline_mfn machine old_mfn with
      | `Offlined | `Pending -> t.degrade.offlined <- t.degrade.offlined + 1
      | `Already -> ());
      t.degrade.ecc_ue <- t.degrade.ecc_ue + 1;
      emit ~pfn ~node:old_node ~arg:old_mfn t Obs.Event.Page_offline;
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr "policies.ras.ecc_ue";
        Obs.Metrics.incr "policies.ras.page_offline"
      end;
      (match Memory.Machine.alloc_frame_fallback machine ~prefer:old_node with
      | None ->
          (* Machine full: the poisoned frame stays mapped (pending)
             until the reconcile/evacuation machinery frees it. *)
          ()
      | Some new_mfn ->
          let costs = t.system.Xen.System.costs in
          let account = t.domain.Xen.Domain.account in
          let was_sp = Xen.P2m.is_superpage p2m pfn in
          Xen.P2m.set p2m pfn ~mfn:new_mfn ~writable;
          if was_sp && not (Xen.P2m.is_superpage p2m pfn) then begin
            note_splinter t ~pfn;
            account.Xen.Domain.migrate_time <-
              account.Xen.Domain.migrate_time
              +. Xen.Costs.splinter_time costs ~frames_4k:(sp_frames_4k t)
          end;
          Memory.Machine.free machine ~mfn:old_mfn ~order:0;
          account.Xen.Domain.migrate_time <-
            account.Xen.Domain.migrate_time
            +. costs.Xen.Costs.page_migrate_fixed
            +. (costs.Xen.Costs.copy_byte *. float_of_int (Memory.Machine.frame_bytes machine));
          let new_node = Memory.Machine.node_of_mfn machine new_mfn in
          emit ~pfn ~node:new_node ~arg:old_mfn t Obs.Event.Ecc_ue)

let request_evacuation t ~node =
  if t.evac_node <> node then begin
    t.evac_node <- node;
    t.evac_cursor <- 0;
    t.evac_backoff <- 0;
    t.evac_started <- t.epoch
  end

let cancel_evacuation t ~node = if t.evac_node = node then t.evac_node <- -1

let evacuating t = t.evac_node

(* One evacuation step: scan the guest-physical space from the rotating
   cursor, collect up to [evac_budget] frames still resident on the
   failing node, and move them in grouped batches round-robin over the
   surviving online nodes.  A full scan finding nothing resident ends
   the evacuation (the trace records how long the drain took).  ENOMEM
   charges the exponential backoff, spills the unmoved tail into the
   deferred queue and feeds the circuit breaker — under a persistent
   shortage the breaker escalates to interleave-over-surviving-nodes
   exactly like any other migration failure storm. *)
let evacuate_step t =
  if t.evac_node >= 0 then begin
    let topo = t.system.Xen.System.topo in
    let frames = Xen.P2m.frames t.domain.Xen.Domain.p2m in
    let nodes = Numa.Topology.node_count topo in
    t.degrade.evac_epochs <- t.degrade.evac_epochs + 1;
    (* Collect this epoch's batch behind the cursor. *)
    let collected = ref 0 in
    let scanned = ref 0 in
    while !collected < evac_budget && !scanned < frames do
      let pfn = (t.evac_cursor + !scanned) mod frames in
      incr scanned;
      match Internal.node_of_pfn t.system t.domain pfn with
      | Some n when n = t.evac_node ->
          t.evac_pfns.(!collected) <- pfn;
          incr collected
      | Some _ | None -> ()
    done;
    t.evac_cursor <- (t.evac_cursor + !scanned) mod frames;
    if !collected = 0 && !scanned >= frames then begin
      (* Full pass, nothing resident: this domain is clear of the
         failing node. *)
      emit ~node:t.evac_node ~arg:(t.epoch - t.evac_started) t Obs.Event.Node_drain;
      if Obs.Metrics.enabled () then Obs.Metrics.incr "policies.ras.node_drains";
      t.evac_node <- -1
    end
    else if !collected > 0 then begin
      let n = !collected in
      (* Destination per frame: round-robin over surviving nodes. *)
      for i = 0 to n - 1 do
        let rec pick attempts =
          let cand = t.evac_rr mod nodes in
          t.evac_rr <- t.evac_rr + 1;
          if cand <> t.evac_node && Numa.Topology.node_online topo cand then cand
          else if attempts + 1 < nodes then pick (attempts + 1)
          else -1
        in
        t.evac_dst.(i) <- pick 0
      done;
      let stopped = ref false in
      let dst = ref 0 in
      while (not !stopped) && !dst < nodes do
        if !dst <> t.evac_node then begin
          let g = ref 0 in
          for i = 0 to n - 1 do
            if t.evac_dst.(i) = !dst then begin
              t.evac_group.(!g) <- t.evac_pfns.(i);
              incr g
            end
          done;
          let gn = !g in
          if gn > 0 then begin
            t.breaker_attempts <- t.breaker_attempts + gn;
            match
              Internal.migrate_group t.system t.domain
                ~on_splinter:(fun pfn -> note_splinter t ~pfn)
                ~pfns:t.evac_group ~scratch_mfns:t.evac_mfns ~n:gn ~node:!dst ()
            with
            | `Done moved ->
                t.degrade.evacuated <- t.degrade.evacuated + moved;
                t.evac_backoff <- 0;
                emit ~node:!dst ~arg:moved t Obs.Event.Evacuate;
                if Obs.Metrics.enabled () then
                  Obs.Metrics.incr ~by:moved "policies.ras.evacuated"
            | `Enomem moved ->
                t.degrade.evacuated <- t.degrade.evacuated + moved;
                t.breaker_failures <- t.breaker_failures + 1;
                charge_backoff t (min t.evac_backoff max_migrate_retries);
                t.evac_backoff <- t.evac_backoff + 1;
                if moved > 0 then emit ~node:!dst ~arg:moved t Obs.Event.Evacuate;
                (* Spill the unmoved tail into the deferred queue: the
                   ordinary drain keeps retrying it with its own budget
                   even if the next scan pass misses these pfns. *)
                for i = moved to gn - 1 do
                  push_pending t ~pfn:t.evac_group.(i) ~node:!dst
                done;
                stopped := true
          end
        end;
        incr dst
      done
    end
  end

(* The promotion scan: walk a window of superpage-sized extents behind
   a rotating cursor and re-coalesce the ones whose frames all live on
   one node.  Contiguous aligned extents promote in place (the entries
   are just rebuilt); same-node but scattered extents are migrated onto
   a freshly allocated contiguous buddy block first — a
   superpage-migrate, the expensive variant.  Budgeted per scan so the
   background work cannot dominate an epoch, and entirely
   deterministic: no randomness, cursor order only. *)
let promote_scan t =
  let p2m = t.domain.Xen.Domain.p2m in
  let sp = Xen.P2m.sp_frames p2m in
  if (not t.superpages) || sp <= 1 then 0
  else begin
    let machine = t.system.Xen.System.machine in
    let costs = t.system.Xen.System.costs in
    let account = t.domain.Xen.Domain.account in
    let extents = Xen.P2m.frames p2m / sp in
    if extents = 0 then 0
    else begin
      let frames_4k = sp_frames_4k t in
      let examined = ref 0 in
      let promoted = ref 0 in
      let to_scan = min extents promote_scan_extents in
      while !examined < to_scan && !promoted < promote_budget do
        let base = (t.promote_cursor + !examined) mod extents * sp in
        incr examined;
        if not (Xen.P2m.is_superpage p2m base) then begin
          (* Classify the extent: fully mapped on one node with uniform
             writability is promotable; contiguity decides the cheap
             vs the copying path. *)
          let all_mapped = ref true in
          let node = ref (-1) in
          let same_node = ref true in
          let uniform_w = ref true in
          let w0 = ref false in
          for i = 0 to sp - 1 do
            match Xen.P2m.get p2m (base + i) with
            | Xen.P2m.Invalid -> all_mapped := false
            | Xen.P2m.Mapped { mfn; writable } ->
                let n = Memory.Machine.node_of_mfn machine mfn in
                if i = 0 then begin
                  node := n;
                  w0 := writable
                end
                else begin
                  if n <> !node then same_node := false;
                  if writable <> !w0 then uniform_w := false
                end
          done;
          if !all_mapped && !same_node && !uniform_w then begin
            if Xen.P2m.promote p2m ~pfn:base then begin
              account.Xen.Domain.migrate_time <-
                account.Xen.Domain.migrate_time
                +. Xen.Costs.promote_time costs ~frames_4k ~copy_bytes:0;
              t.stats.promotes <- t.stats.promotes + 1;
              emit ~pfn:base ~node:!node ~arg:sp t Obs.Event.Promote;
              if Obs.Metrics.enabled () then Obs.Metrics.incr "policies.superpage.promotes";
              incr promoted
            end
            else begin
              match Memory.Machine.alloc_on machine ~node:!node ~order:(Memory.Machine.order_2m machine) with
              | None -> () (* no contiguous block free on that node *)
              | Some new_base ->
                  Memory.Machine.split_block machine ~mfn:new_base
                    ~order:(Memory.Machine.order_2m machine);
                  for i = 0 to sp - 1 do
                    match Xen.P2m.get p2m (base + i) with
                    | Xen.P2m.Mapped { mfn = old_mfn; writable } ->
                        Xen.P2m.set p2m (base + i) ~mfn:(new_base + i) ~writable;
                        Memory.Machine.free machine ~mfn:old_mfn ~order:0
                    | Xen.P2m.Invalid -> assert false
                  done;
                  let ok = Xen.P2m.promote p2m ~pfn:base in
                  assert ok;
                  account.Xen.Domain.migrate_time <-
                    account.Xen.Domain.migrate_time
                    +. Xen.Costs.promote_time costs ~frames_4k
                         ~copy_bytes:(sp * Memory.Machine.frame_bytes machine);
                  t.stats.superpage_migrates <- t.stats.superpage_migrates + 1;
                  emit ~pfn:base ~node:!node ~arg:sp t Obs.Event.Superpage_migrate;
                  if Obs.Metrics.enabled () then
                    Obs.Metrics.incr "policies.superpage.migrates";
                  incr promoted
            end
          end
        end
      done;
      t.promote_cursor <- (t.promote_cursor + !examined) mod extents;
      !promoted
    end
  end

let reconcile t ~guest_free =
  let costs = t.system.Xen.System.costs in
  let p2m = t.domain.Xen.Domain.p2m in
  let stale = ref [] in
  Xen.P2m.iter_mapped p2m (fun pfn mfn ->
      (* RAS invariant: an offlined machine frame must never stay
         reachable through any P2M — the UE handler and the evacuation
         engine remap before the frame retires. *)
      if Memory.Machine.is_offlined t.system.Xen.System.machine mfn then
        invalid_arg
          (Printf.sprintf "Manager.reconcile: offlined mfn %d still mapped at pfn %d" mfn pfn);
      if guest_free pfn then stale := pfn :: !stale);
  let healed = ref 0 in
  let splinter_time = ref 0.0 in
  List.iter
    (fun pfn ->
      if Xen.P2m.is_superpage p2m pfn then begin
        note_splinter t ~pfn;
        splinter_time :=
          !splinter_time +. Xen.Costs.splinter_time costs ~frames_4k:(sp_frames_4k t)
      end;
      match Xen.P2m.invalidate p2m pfn with
      | Some mfn ->
          Memory.Machine.free t.system.Xen.System.machine ~mfn ~order:0;
          incr healed
      | None -> ())
    !stale;
  t.degrade.reconcile_sweeps <- t.degrade.reconcile_sweeps + 1;
  t.degrade.reconciled <- t.degrade.reconciled + !healed;
  emit ~arg:!healed t Obs.Event.Reconcile_sweep;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr "policies.reconcile.sweeps";
    Obs.Metrics.incr ~by:!healed "policies.reconcile.healed"
  end;
  charge_hypercall t Xen.Hypercall.Page_ops
    (costs.Xen.Costs.hypercall_entry
    +. (float_of_int !healed *. costs.Xen.Costs.page_invalidate)
    +. !splinter_time);
  !healed

let epoch_tick t ~epoch ?guest_free () =
  t.epoch <- epoch;
  (* The breaker closes by cooldown expiry, not by an explicit call:
     detect the open->closed transition here so the trace records it. *)
  if t.breaker_was_open && not (breaker_open t) then begin
    t.breaker_was_open <- false;
    emit ~arg:t.degrade.breaker_trips t Obs.Event.Breaker_cooldown
  end;
  evacuate_step t;
  drain_pending t;
  evaluate_breaker t;
  if t.superpages && (not (statically_degraded t)) && epoch > 0 && epoch mod promote_period = 0
  then ignore (promote_scan t);
  match guest_free with
  | Some guest_free
    when t.spec.Spec.placement = Spec.First_touch
         && epoch > 0
         && epoch mod reconcile_period = 0 ->
      ignore (reconcile t ~guest_free)
  | Some _ | None -> ()

let carrefour_epoch_feed t ~counters ~feed =
  match t.carrefour with
  | None -> None
  | Some sys ->
      if breaker_open t then None
      else begin
        (* The dom0 user component reads metrics through a hypercall. *)
        charge_hypercall t Xen.Hypercall.Carrefour_read_metrics
          t.system.Xen.System.costs.Xen.Costs.hypercall_entry;
        Carrefour.System_component.begin_epoch sys;
        feed sys;
        let report =
          Carrefour.run_epoch
            ~interleave_only:(t.degrade.breaker_level >= 1)
            ~migrate:(fun ~pfn ~node -> migrate_resilient t ~pfn ~node)
            sys ~config:t.carrefour_config ~rng:t.rng ~counters
        in
        evaluate_breaker t;
        Some report
      end

let carrefour_epoch t ~counters ~samples =
  carrefour_epoch_feed t ~counters ~feed:(fun sys ->
      List.iter
        (fun (s : Carrefour.sample) ->
          Carrefour.System_component.record_sample sys ~pfn:s.Carrefour.pfn
            ~node_accesses:s.Carrefour.node_accesses ~read_fraction:s.Carrefour.read_fraction)
        samples)

let degrade t = t.degrade
let pending_migrations t = Queue.length t.pending

(* Nothing deferred, nothing in flight: an [epoch_tick] delivered now
   would only advance [t.epoch].  The pending queue and evacuation
   engine must be drained, the breaker closed with its cooldown event
   already emitted, and the breaker window below the evaluation
   threshold — [evaluate_breaker] only acts at [breaker_min_attempts],
   so skipping it below that is a no-op, even with a residue of
   attempts left by an old promote scan that will never reach the
   threshold again.  Promote scans and reconcile sweeps are
   period-gated on the epoch number and handled separately by the
   caller's skip horizon. *)
let quiescent t =
  Queue.is_empty t.pending
  && t.evac_node < 0
  && (not (breaker_open t))
  && (not t.breaker_was_open)
  && t.breaker_attempts < breaker_min_attempts
let superpages_enabled t = t.superpages
let pt t = t.pt

let node_of_pfn t pfn = Internal.node_of_pfn t.system t.domain pfn
