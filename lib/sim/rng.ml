type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

(* A distinct odd gamma (from the PCG family), not [golden_gamma]:
   [derive t ~id:0] must never collide with the child [split t] would
   produce from the same state. *)
let derive_gamma = 0xD1B54A32D192ED03L

let derive t ~id =
  let z = Int64.add t.state (Int64.mul derive_gamma (Int64.of_int (id + 1))) in
  { state = mix (mix z) }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value stays non-negative in a 63-bit int. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land max_int in
  r mod bound

(* 53 random bits mapped to [0,1). *)
let unit_float t =
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r *. 0x1p-53

let float t bound = unit_float t *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = unit_float t < p

let exponential t ~mean =
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. unit_float t and u2 = unit_float t in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(* Rejection-inversion sampling for the Zipf distribution, after
   W. Hormann and G. Derflinger, "Rejection-inversion to generate variates
   from monotone discrete distributions" (1996).  O(1) per draw. *)
let zipf t ~n ~s =
  assert (n > 0);
  if n = 1 then 0
  else begin
    let nf = float_of_int n in
    let h x = if Float.abs (1.0 -. s) < 1e-9 then log x else (x ** (1.0 -. s)) /. (1.0 -. s) in
    let h_inv x =
      if Float.abs (1.0 -. s) < 1e-9 then exp x else ((1.0 -. s) *. x) ** (1.0 /. (1.0 -. s))
    in
    let hx0 = h 0.5 -. 1.0 in
    let hn = h (nf +. 0.5) in
    let rec draw () =
      let u = hx0 +. (unit_float t *. (hn -. hx0)) in
      let x = h_inv u in
      let k = Float.round x in
      let k = Float.max 1.0 (Float.min nf k) in
      if k -. x <= 0.5 || u >= h (k +. 0.5) -. (k ** -.s) then int_of_float k - 1
      else draw ()
    in
    draw ()
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
