(** Streaming and array statistics used by counters and reports. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summary_of_array : float array -> summary
(** Summary of a non-empty array ([count = 0] summary for an empty one,
    with [mean]/[stddev] 0 and infinite [min], neg-infinite [max]). *)

val mean : float array -> float

val stddev : float array -> float
(** Population standard deviation. *)

val relative_stddev : float array -> float
(** Standard deviation divided by the mean — the paper's "imbalance"
    metric (Table 1) over per-node access counts.  Returns 0 when the
    mean is 0. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,100\]]; linear interpolation
    between ranks.  The array is sorted internally (copy). *)

val geometric_mean : float array -> float
(** Geometric mean of positive values. *)

(** Log-bucketed histogram for latency-style distributions: fixed
    relative bucket width (default ~9%, base [2^(1/8)]), O(buckets)
    percentiles, exact count/sum/min/max.  Zero and negative samples
    share one bucket reported as 0. *)
module Histogram : sig
  type t

  val create : ?base:float -> unit -> t
  (** [base] is the bucket ratio, must be [> 1]. *)

  val add : t -> float -> unit

  val add_n : t -> float -> int -> unit
  (** [add_n t v n] records [n] identical samples of [v], leaving [t]
      bit-identical to [n] successive [add t v] calls — the running sum
      is accumulated by [n] sequential float additions, never by
      [v *. float n], because repeated addition does not distribute.
      [n = 0] is a no-op.
      @raise Invalid_argument on a negative [n]. *)

  val count : t -> int
  val total : t -> float
  val mean : t -> float

  val min : t -> float
  (** 0 when empty. *)

  val max : t -> float
  (** 0 when empty. *)

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0,100\]]: the geometric centre of
      the bucket holding the rank, clamped to the observed
      [\[min,max\]] range (0 for an empty histogram). *)

  val zeros : t -> int
  (** Samples that landed in the zero-or-negative bucket. *)

  val bucket_counts : t -> (int * int) list
  (** Positive-value buckets as (index, count), index ascending.  The
      distribution state minus float [total]: two histograms with equal
      [bucket_counts], [zeros], [count], [min] and [max] report equal
      percentiles. *)

  val copy : t -> t
  (** Independent deep copy (snapshot). *)

  val diff : t -> t -> t
  (** [diff t older]: the window of samples added to [t] since [older]
      was [copy]ed from it.  Min/max of the window are rebuilt to
      bucket resolution.
      @raise Invalid_argument when bases differ or [older] is not a
      subset of [t]. *)

  val merge : t -> t -> unit
  (** Fold [other]'s samples into [t].
      @raise Invalid_argument when bases differ. *)

  val clear : t -> unit
end

(** Bounded top-k selection over (key, id) pairs: a flat-array binary
    min-heap of the k best candidates, whose root is the worst kept
    element.  Ranking is the total order "bigger key first, ties toward
    the smaller id", so the selected set and its order never depend on
    insertion order.  Zero allocation after [create] except in
    [sorted_desc]. *)
module Topk : sig
  type t

  val create : int -> t
  (** [create k] keeps the best [k] candidates.
      @raise Invalid_argument when [k <= 0]. *)

  val capacity : t -> int
  val size : t -> int

  val clear : t -> unit
  (** Forget every candidate (arrays are reused). *)

  val add : t -> key:float -> int -> unit
  (** Offer a candidate.  O(1) when it ranks below the current root,
      O(log k) otherwise. *)

  val decay : t -> float -> unit
  (** Multiply every kept key by a positive factor (ranking, and hence
      the heap shape, is preserved).
      @raise Invalid_argument when the factor is not positive. *)

  val min_key : t -> float
  (** Key of the worst kept element; [neg_infinity] when empty. *)

  val sorted_desc : t -> (float * int) array
  (** Kept candidates, best first (key descending, id ascending on
      ties).  Allocates the result array. *)

  val heap_invariant : t -> bool
  (** Whether the internal heap shape is valid (property tests). *)
end

(** Online accumulator (Welford) for mean/variance without storing
    samples. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val max : t -> float
  val min : t -> float
end
