(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that runs are reproducible from a single seed.  The
    generator is splitmix64: fast, 64-bit, and splittable, which lets
    each simulated thread or device own an independent stream derived
    from the root seed. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated entity its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val derive : t -> id:int -> t
(** [derive t ~id] returns the [id]-indexed member of a family of
    independent streams rooted at [t]'s {e current} state — {b without
    advancing [t]}, so inserting derivations into existing code leaves
    every subsequent draw of [t] bit-identical.  The stream is a pure
    function of (state, [id]): per-vCPU streams derived this way are
    identical however the vCPUs are later partitioned across shards.
    Distinct [id]s give decorrelated streams ([id] is scaled by an odd
    gamma and finalised twice); [derive] never collides with the
    children {!split} produces. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed float (Box-Muller). *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in [\[0, n)] under a Zipf law with
    exponent [s]; rank 0 is the most popular.  Uses rejection-inversion
    so it is O(1) per draw even for large [n]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
