type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (acc /. float_of_int n)
  end

let relative_stddev a =
  let m = mean a in
  if m = 0.0 then 0.0 else stddev a /. m

let summary_of_array a =
  let count = Array.length a in
  let min = Array.fold_left Float.min Float.infinity a in
  let max = Array.fold_left Float.max Float.neg_infinity a in
  { count; mean = mean a; stddev = stddev a; min; max }

let percentile a p =
  assert (p >= 0.0 && p <= 100.0);
  let n = Array.length a in
  assert (n > 0);
  let sorted = Array.copy a in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let geometric_mean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun acc x -> assert (x > 0.0); acc +. log x) 0.0 a in
    exp (acc /. float_of_int n)
  end

module Histogram = struct
  (* Log-bucketed histogram: values land in geometric buckets of ratio
     [base] (default 2^(1/8), ~9% wide), so percentiles cost O(buckets)
     with bounded relative error whatever the value range.  Zero and
     negative values share a dedicated bucket reported as 0. *)

  type t = {
    base : float;
    log_base : float;
    buckets : (int, int ref) Hashtbl.t;
    mutable zeros : int;
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let create ?(base = Float.pow 2.0 0.125) () =
    if base <= 1.0 then invalid_arg "Histogram.create: base must be > 1";
    {
      base;
      log_base = log base;
      buckets = Hashtbl.create 64;
      zeros = 0;
      count = 0;
      sum = 0.0;
      min = Float.infinity;
      max = Float.neg_infinity;
    }

  let bucket_of t v = int_of_float (Float.round (log v /. t.log_base))

  (* Geometric centre of a bucket: the canonical value reported for
     every sample that landed in it. *)
  let value_of t idx = Float.pow t.base (float_of_int idx)

  let add t v =
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v;
    if v <= 0.0 then t.zeros <- t.zeros + 1
    else begin
      let idx = bucket_of t v in
      match Hashtbl.find_opt t.buckets idx with
      | Some r -> incr r
      | None -> Hashtbl.replace t.buckets idx (ref 1)
    end

  (* Bulk insert of [n] identical samples.  The sum is accumulated by
     [n] sequential additions, NOT [v *. float n]: repeated float
     addition is not distributive, and the engine's fast-forward path
     needs [add_n t v n] to leave [t] bit-identical to [n] calls of
     [add t v]. *)
  let add_n t v n =
    if n < 0 then invalid_arg "Histogram.add_n: negative count";
    if n > 0 then begin
      t.count <- t.count + n;
      for _ = 1 to n do
        t.sum <- t.sum +. v
      done;
      if v < t.min then t.min <- v;
      if v > t.max then t.max <- v;
      if v <= 0.0 then t.zeros <- t.zeros + n
      else begin
        let idx = bucket_of t v in
        match Hashtbl.find_opt t.buckets idx with
        | Some r -> r := !r + n
        | None -> Hashtbl.replace t.buckets idx (ref n)
      end
    end

  let count t = t.count
  let total t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let min t = if t.count = 0 then 0.0 else t.min
  let max t = if t.count = 0 then 0.0 else t.max

  let sorted_buckets t =
    let all = Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) t.buckets [] in
    List.sort (fun (a, _) (b, _) -> compare a b) all

  let percentile t p =
    assert (p >= 0.0 && p <= 100.0);
    if t.count = 0 then 0.0
    else begin
      let rank = p /. 100.0 *. float_of_int t.count in
      let seen = ref (float_of_int t.zeros) in
      if !seen >= rank && t.zeros > 0 then 0.0
      else begin
        let result = ref t.max in
        (try
           List.iter
             (fun (idx, n) ->
               seen := !seen +. float_of_int n;
               if !seen >= rank then begin
                 result := value_of t idx;
                 raise Exit
               end)
             (sorted_buckets t)
         with Exit -> ());
        (* Clamp to the observed range: the bucket centre can exceed
           the true extremes by half a bucket. *)
        Float.min t.max (Float.max t.min !result)
      end
    end

  let zeros t = t.zeros
  let bucket_counts t = sorted_buckets t

  let copy t =
    let buckets = Hashtbl.create (Hashtbl.length t.buckets) in
    Hashtbl.iter (fun idx r -> Hashtbl.replace buckets idx (ref !r)) t.buckets;
    {
      base = t.base;
      log_base = t.log_base;
      buckets;
      zeros = t.zeros;
      count = t.count;
      sum = t.sum;
      min = t.min;
      max = t.max;
    }

  (* Window between two snapshots of the SAME growing histogram:
     [diff t older] is everything added to [t] since [older] was
     copied.  Min/max are only known to bucket resolution inside the
     window, so they are rebuilt from the surviving bucket centres. *)
  let diff t older =
    if Float.abs (t.base -. older.base) > 1e-12 then
      invalid_arg "Histogram.diff: mismatched bucket bases";
    if t.count < older.count || t.zeros < older.zeros then
      invalid_arg "Histogram.diff: older snapshot is not a subset";
    let d = create ~base:t.base () in
    Hashtbl.iter
      (fun idx r ->
        let prev =
          match Hashtbl.find_opt older.buckets idx with Some p -> !p | None -> 0
        in
        let n = !r - prev in
        if n < 0 then invalid_arg "Histogram.diff: older snapshot is not a subset";
        if n > 0 then Hashtbl.replace d.buckets idx (ref n))
      t.buckets;
    d.zeros <- t.zeros - older.zeros;
    d.count <- t.count - older.count;
    d.sum <- t.sum -. older.sum;
    let lo = ref Float.infinity and hi = ref Float.neg_infinity in
    if d.zeros > 0 then begin
      lo := 0.0;
      hi := 0.0
    end;
    Hashtbl.iter
      (fun idx _ ->
        let v = value_of d idx in
        if v < !lo then lo := v;
        if v > !hi then hi := v)
      d.buckets;
    d.min <- !lo;
    d.max <- !hi;
    d

  let merge t other =
    if Float.abs (t.base -. other.base) > 1e-12 then
      invalid_arg "Histogram.merge: mismatched bucket bases";
    Hashtbl.iter
      (fun idx r ->
        match Hashtbl.find_opt t.buckets idx with
        | Some mine -> mine := !mine + !r
        | None -> Hashtbl.replace t.buckets idx (ref !r))
      other.buckets;
    t.zeros <- t.zeros + other.zeros;
    t.count <- t.count + other.count;
    t.sum <- t.sum +. other.sum;
    if other.min < t.min then t.min <- other.min;
    if other.max > t.max then t.max <- other.max

  let clear t =
    Hashtbl.reset t.buckets;
    t.zeros <- 0;
    t.count <- 0;
    t.sum <- 0.0;
    t.min <- Float.infinity;
    t.max <- Float.neg_infinity
end

module Topk = struct
  (* Bounded top-k selector: a binary min-heap of the k best candidates
     seen so far, stored in parallel flat arrays (no boxing, no
     allocation after [create]).  The root is the WORST kept element,
     so a candidate is admitted with one root comparison and at most
     O(log k) sifting.  Ranking is the total order "bigger key wins,
     ties break toward the smaller id", so the selected set and the
     [sorted_desc] order are independent of insertion order — the
     property the trace determinism bar needs. *)

  type t = {
    k : int;
    keys : float array;
    ids : int array;
    mutable size : int;
  }

  let create k =
    if k <= 0 then invalid_arg "Topk.create: k must be positive";
    { k; keys = Array.make k 0.0; ids = Array.make k 0; size = 0 }

  let capacity t = t.k
  let size t = t.size
  let clear t = t.size <- 0

  (* [ranks_below ka ia kb ib]: candidate (ka, ia) ranks strictly below
     (kb, ib) in the keep order. *)
  let ranks_below ka ia kb ib = ka < kb || (ka = kb && ia > ib)

  let swap t i j =
    let k = t.keys.(i) and id = t.ids.(i) in
    t.keys.(i) <- t.keys.(j);
    t.ids.(i) <- t.ids.(j);
    t.keys.(j) <- k;
    t.ids.(j) <- id

  let rec sift_up t i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if ranks_below t.keys.(i) t.ids.(i) t.keys.(p) t.ids.(p) then begin
        swap t i p;
        sift_up t p
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < t.size && ranks_below t.keys.(l) t.ids.(l) t.keys.(!m) t.ids.(!m) then m := l;
    if r < t.size && ranks_below t.keys.(r) t.ids.(r) t.keys.(!m) t.ids.(!m) then m := r;
    if !m <> i then begin
      swap t i !m;
      sift_down t !m
    end

  let add t ~key id =
    if t.size < t.k then begin
      t.keys.(t.size) <- key;
      t.ids.(t.size) <- id;
      t.size <- t.size + 1;
      sift_up t (t.size - 1)
    end
    else if ranks_below t.keys.(0) t.ids.(0) key id then begin
      t.keys.(0) <- key;
      t.ids.(0) <- id;
      sift_down t 0
    end

  (* Exponential decay of every kept key.  A positive factor preserves
     the ranking order, so the heap shape stays valid as-is. *)
  let decay t factor =
    if factor <= 0.0 then invalid_arg "Topk.decay: factor must be positive";
    for i = 0 to t.size - 1 do
      t.keys.(i) <- t.keys.(i) *. factor
    done

  let min_key t = if t.size = 0 then neg_infinity else t.keys.(0)

  let sorted_desc t =
    let a = Array.init t.size (fun i -> (t.keys.(i), t.ids.(i))) in
    Array.sort
      (fun (ka, ia) (kb, ib) -> if ka = kb then compare ia ib else compare kb ka)
      a;
    a

  (* Heap-shape invariant, exposed for the property tests: no element
     ranks strictly below its parent. *)
  let heap_invariant t =
    let ok = ref true in
    for i = 1 to t.size - 1 do
      let p = (i - 1) / 2 in
      if ranks_below t.keys.(i) t.ids.(i) t.keys.(p) t.ids.(p) then ok := false
    done;
    !ok
end

module Online = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = Float.infinity; max = Float.neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = t.mean

  let stddev t =
    if t.count = 0 then 0.0 else sqrt (t.m2 /. float_of_int t.count)

  let max t = t.max
  let min t = t.min
end
