type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (acc /. float_of_int n)
  end

let relative_stddev a =
  let m = mean a in
  if m = 0.0 then 0.0 else stddev a /. m

let summary_of_array a =
  let count = Array.length a in
  let min = Array.fold_left Float.min Float.infinity a in
  let max = Array.fold_left Float.max Float.neg_infinity a in
  { count; mean = mean a; stddev = stddev a; min; max }

let percentile a p =
  assert (p >= 0.0 && p <= 100.0);
  let n = Array.length a in
  assert (n > 0);
  let sorted = Array.copy a in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let geometric_mean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun acc x -> assert (x > 0.0); acc +. log x) 0.0 a in
    exp (acc /. float_of_int n)
  end

module Histogram = struct
  (* Log-bucketed histogram: values land in geometric buckets of ratio
     [base] (default 2^(1/8), ~9% wide), so percentiles cost O(buckets)
     with bounded relative error whatever the value range.  Zero and
     negative values share a dedicated bucket reported as 0. *)

  type t = {
    base : float;
    log_base : float;
    buckets : (int, int ref) Hashtbl.t;
    mutable zeros : int;
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let create ?(base = Float.pow 2.0 0.125) () =
    if base <= 1.0 then invalid_arg "Histogram.create: base must be > 1";
    {
      base;
      log_base = log base;
      buckets = Hashtbl.create 64;
      zeros = 0;
      count = 0;
      sum = 0.0;
      min = Float.infinity;
      max = Float.neg_infinity;
    }

  let bucket_of t v = int_of_float (Float.round (log v /. t.log_base))

  (* Geometric centre of a bucket: the canonical value reported for
     every sample that landed in it. *)
  let value_of t idx = Float.pow t.base (float_of_int idx)

  let add t v =
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v;
    if v <= 0.0 then t.zeros <- t.zeros + 1
    else begin
      let idx = bucket_of t v in
      match Hashtbl.find_opt t.buckets idx with
      | Some r -> incr r
      | None -> Hashtbl.replace t.buckets idx (ref 1)
    end

  let count t = t.count
  let total t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let min t = if t.count = 0 then 0.0 else t.min
  let max t = if t.count = 0 then 0.0 else t.max

  let sorted_buckets t =
    let all = Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) t.buckets [] in
    List.sort (fun (a, _) (b, _) -> compare a b) all

  let percentile t p =
    assert (p >= 0.0 && p <= 100.0);
    if t.count = 0 then 0.0
    else begin
      let rank = p /. 100.0 *. float_of_int t.count in
      let seen = ref (float_of_int t.zeros) in
      if !seen >= rank && t.zeros > 0 then 0.0
      else begin
        let result = ref t.max in
        (try
           List.iter
             (fun (idx, n) ->
               seen := !seen +. float_of_int n;
               if !seen >= rank then begin
                 result := value_of t idx;
                 raise Exit
               end)
             (sorted_buckets t)
         with Exit -> ());
        (* Clamp to the observed range: the bucket centre can exceed
           the true extremes by half a bucket. *)
        Float.min t.max (Float.max t.min !result)
      end
    end

  let merge t other =
    if Float.abs (t.base -. other.base) > 1e-12 then
      invalid_arg "Histogram.merge: mismatched bucket bases";
    Hashtbl.iter
      (fun idx r ->
        match Hashtbl.find_opt t.buckets idx with
        | Some mine -> mine := !mine + !r
        | None -> Hashtbl.replace t.buckets idx (ref !r))
      other.buckets;
    t.zeros <- t.zeros + other.zeros;
    t.count <- t.count + other.count;
    t.sum <- t.sum +. other.sum;
    if other.min < t.min then t.min <- other.min;
    if other.max > t.max then t.max <- other.max

  let clear t =
    Hashtbl.reset t.buckets;
    t.zeros <- 0;
    t.count <- 0;
    t.sum <- 0.0;
    t.min <- Float.infinity;
    t.max <- Float.neg_infinity
end

module Online = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = Float.infinity; max = Float.neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = t.mean

  let stddev t =
    if t.count = 0 then 0.0 else sqrt (t.m2 /. float_of_int t.count)

  let max t = t.max
  let min t = t.min
end
