#!/bin/sh
# Tier-1 verification in one command: full build, full test suite, and
# a parallel-sweep smoke run of the bench driver.
set -e
cd "$(dirname "$0")"

dune build
dune runtest
dune exec bench/main.exe -- tab1 --jobs 2

# Chaos suite, pinned seed: the degradation grid must complete every
# fault plan (a plan that hits the epoch cap prints a WARNING).
dune exec bench/main.exe -- chaos --jobs 2

# Memory-RAS grid: ECC storms and a permanent node failure.  The bar
# is the same — every cell completes, the failed node is evacuated
# (DESIGN.md §14; a cell that hits the epoch cap prints a WARNING).
dune exec bench/main.exe -- ras --jobs 2

# Combined chaos + RAS smoke: software faults and hardware RAS compose
# in one plan — queue loss and flaky allocations while a node dies and
# ECC errors land.  The run must still complete.
dune exec bin/xen_numa_sim.exe -- run swaptions -m xen+ -p ft+carrefour \
  --faults "alloc=0.2,batch-loss=0.3,ecc-ce=0.5,ecc-ue=0.02,node_fail=1.0@50" >/dev/null
echo "tier1: chaos+ras combined smoke OK"

# Hugepage grid: superpages on/off across the three boot placements
# (EXPERIMENTS.md documents the expected shape; test/test_engine.ml
# pins it).
dune exec bench/main.exe -- hugepage --jobs 2

# Mitosis grid: radix page-walk pricing and page-table replication
# on/off (EXPERIMENTS.md documents the expected shape;
# test/test_extensions.ml pins the differential core).
dune exec bench/main.exe -- mitosis --jobs 2

# Perf gate: re-run the tab1 grid and compare wall-clock against the
# most recently committed BENCH_*.json (at its recorded --jobs
# setting, so deltas measure the code and not domain-count overhead).
# Any section more than 25% slower than the reference fails the build.
PERF_REF=""
PERF_REF_TIME=0
for f in BENCH_*.json; do
  [ -f "$f" ] || continue
  t=$(git log -1 --format=%ct -- "$f" 2>/dev/null)
  [ -n "$t" ] || continue
  if [ "$t" -gt "$PERF_REF_TIME" ]; then
    PERF_REF_TIME=$t
    PERF_REF=$f
  fi
done
if [ -n "$PERF_REF" ]; then
  PERF_JOBS=$(sed -n 's/^ *"jobs": \([0-9][0-9]*\),$/\1/p' "$PERF_REF")
  PERF_JOBS="${PERF_JOBS:-1}"
  echo "tier1: perf gate vs $PERF_REF (--jobs $PERF_JOBS)"
  dune exec bench/main.exe -- tab1 --jobs "$PERF_JOBS" --compare "$PERF_REF"
else
  echo "tier1: perf gate skipped (no committed BENCH_*.json)"
fi

# Usage errors must be reported as such: unknown sections and a
# malformed --jobs both exit non-zero.
if dune exec bench/main.exe -- no-such-section >/dev/null 2>&1; then
  echo "tier1: FAIL - unknown bench section did not exit non-zero" >&2
  exit 1
fi
if dune exec bench/main.exe -- tab1 --jobs banana >/dev/null 2>&1; then
  echo "tier1: FAIL - bad --jobs did not exit non-zero" >&2
  exit 1
fi

# Trace determinism smoke: the same grid traced at --jobs 1 and
# --jobs 4 must export byte-identical JSONL (streams are merged by
# config-derived label, never by worker schedule), every line must be
# one JSON object, and the summariser must accept the file.
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
dune exec bench/main.exe -- tab1 --jobs 1 --trace "$TRACE_DIR/j1.jsonl" --trace-cap 512 >/dev/null
dune exec bench/main.exe -- tab1 --jobs 4 --trace "$TRACE_DIR/j4.jsonl" --trace-cap 512 >/dev/null
cmp "$TRACE_DIR/j1.jsonl" "$TRACE_DIR/j4.jsonl" || {
  echo "tier1: FAIL - traces differ between --jobs 1 and --jobs 4" >&2
  exit 1
}
grep -cv '^{.*}$' "$TRACE_DIR/j1.jsonl" >/dev/null 2>&1 && {
  echo "tier1: FAIL - trace contains non-JSON-object lines" >&2
  exit 1
}
dune exec bin/xen_numa_trace.exe -- check "$TRACE_DIR/j1.jsonl"
dune exec bin/xen_numa_trace.exe -- summary --timeline 4 "$TRACE_DIR/j1.jsonl" >/dev/null
echo "tier1: trace determinism OK ($(wc -l < "$TRACE_DIR/j1.jsonl") JSONL lines)"

# Same determinism bar for the hugepage grid: the promotion scan is
# cursor-driven and the TLB blend derives from P2M state, so the
# worker schedule must not leak into the trace.
dune exec bench/main.exe -- hugepage --jobs 1 --trace "$TRACE_DIR/hp1.jsonl" --trace-cap 512 >/dev/null
dune exec bench/main.exe -- hugepage --jobs 4 --trace "$TRACE_DIR/hp4.jsonl" --trace-cap 512 >/dev/null
cmp "$TRACE_DIR/hp1.jsonl" "$TRACE_DIR/hp4.jsonl" || {
  echo "tier1: FAIL - hugepage traces differ between --jobs 1 and --jobs 4" >&2
  exit 1
}
dune exec bin/xen_numa_trace.exe -- check "$TRACE_DIR/hp1.jsonl"
echo "tier1: hugepage trace determinism OK ($(wc -l < "$TRACE_DIR/hp1.jsonl") JSONL lines)"

# Same bar for the mitosis grid: walk-off cells must replay the
# baseline engine byte for byte, and the replica update stream (hence
# the walk/replica summary events) must be a function of the cell seed
# alone, never of the worker schedule.
dune exec bench/main.exe -- mitosis --jobs 1 --trace "$TRACE_DIR/mt1.jsonl" --trace-cap 512 >/dev/null
dune exec bench/main.exe -- mitosis --jobs 4 --trace "$TRACE_DIR/mt4.jsonl" --trace-cap 512 >/dev/null
cmp "$TRACE_DIR/mt1.jsonl" "$TRACE_DIR/mt4.jsonl" || {
  echo "tier1: FAIL - mitosis traces differ between --jobs 1 and --jobs 4" >&2
  exit 1
}
dune exec bin/xen_numa_trace.exe -- check "$TRACE_DIR/mt1.jsonl"
echo "tier1: mitosis trace determinism OK ($(wc -l < "$TRACE_DIR/mt1.jsonl") JSONL lines)"

# And for the RAS grid: node-failure targets, ECC draws, evacuation
# batches and the degraded traffic model must all be functions of the
# cell seed alone, never of the worker schedule.
dune exec bench/main.exe -- ras --jobs 1 --trace "$TRACE_DIR/ras1.jsonl" --trace-cap 512 >/dev/null
dune exec bench/main.exe -- ras --jobs 4 --trace "$TRACE_DIR/ras4.jsonl" --trace-cap 512 >/dev/null
cmp "$TRACE_DIR/ras1.jsonl" "$TRACE_DIR/ras4.jsonl" || {
  echo "tier1: FAIL - ras traces differ between --jobs 1 and --jobs 4" >&2
  exit 1
}
dune exec bin/xen_numa_trace.exe -- check "$TRACE_DIR/ras1.jsonl"
echo "tier1: ras trace determinism OK ($(wc -l < "$TRACE_DIR/ras1.jsonl") JSONL lines)"

# Intra-run sharding determinism: one fig2-style cell traced with the
# epoch kernel unsharded and sharded over 4 team members must export
# byte-identical JSONL — the sequential fixed-order reduction, not the
# shard schedule, decides every accumulated bit.
dune exec bin/xen_numa_sim.exe -- run pagerank -m linux -p first-touch/carrefour \
  --inner-jobs 1 --trace "$TRACE_DIR/ij1.jsonl" >/dev/null
dune exec bin/xen_numa_sim.exe -- run pagerank -m linux -p first-touch/carrefour \
  --inner-jobs 4 --trace "$TRACE_DIR/ij4.jsonl" >/dev/null
cmp "$TRACE_DIR/ij1.jsonl" "$TRACE_DIR/ij4.jsonl" || {
  echo "tier1: FAIL - traces differ between --inner-jobs 1 and --inner-jobs 4" >&2
  exit 1
}
echo "tier1: inner-jobs trace determinism OK ($(wc -l < "$TRACE_DIR/ij1.jsonl") JSONL lines)"

# The same bar with the radix walk model and replicated page tables
# on: the walk repricing and replica propagation live outside the
# per-vCPU shards, so the sharded kernel must export identical bytes.
dune exec bin/xen_numa_sim.exe -- run swaptions -t 8 -m xen+ -p first-touch/carrefour \
  --pt-walk --replicate-pt --inner-jobs 1 --trace "$TRACE_DIR/ptij1.jsonl" >/dev/null
dune exec bin/xen_numa_sim.exe -- run swaptions -t 8 -m xen+ -p first-touch/carrefour \
  --pt-walk --replicate-pt --inner-jobs 4 --trace "$TRACE_DIR/ptij4.jsonl" >/dev/null
cmp "$TRACE_DIR/ptij1.jsonl" "$TRACE_DIR/ptij4.jsonl" || {
  echo "tier1: FAIL - pt-walk traces differ between --inner-jobs 1 and --inner-jobs 4" >&2
  exit 1
}
echo "tier1: pt-walk inner-jobs determinism OK ($(wc -l < "$TRACE_DIR/ptij1.jsonl") JSONL lines)"

# Fast-forward equivalence: the steady-state delta replay must be
# invisible in the trace bytes.  One static cell (round-4k quiesces
# into a pure replay streak) and one Carrefour cell (decade boundaries
# punctuate the streaks) run with fast-forward on and off; the JSONL
# exports must be byte-identical — same events, same floats, same
# order — with only the stdout replay count allowed to differ.
dune exec bin/xen_numa_sim.exe -- run swaptions -t 8 -m xen+ -p round-4k \
  --trace "$TRACE_DIR/ffon.jsonl" >/dev/null
dune exec bin/xen_numa_sim.exe -- run swaptions -t 8 -m xen+ -p round-4k \
  --no-fast-forward --trace "$TRACE_DIR/ffoff.jsonl" >/dev/null
cmp "$TRACE_DIR/ffon.jsonl" "$TRACE_DIR/ffoff.jsonl" || {
  echo "tier1: FAIL - static-cell traces differ between fast-forward on and off" >&2
  exit 1
}
dune exec bin/xen_numa_sim.exe -- run streamcluster -t 8 -m xen+ -p round-4k/carrefour \
  --trace "$TRACE_DIR/ffcon.jsonl" >/dev/null
dune exec bin/xen_numa_sim.exe -- run streamcluster -t 8 -m xen+ -p round-4k/carrefour \
  --no-fast-forward --trace "$TRACE_DIR/ffcoff.jsonl" >/dev/null
cmp "$TRACE_DIR/ffcon.jsonl" "$TRACE_DIR/ffcoff.jsonl" || {
  echo "tier1: FAIL - carrefour-cell traces differ between fast-forward on and off" >&2
  exit 1
}
echo "tier1: fast-forward trace equivalence OK"

# Trace query engine smoke: the streaming query over the tab1 traces
# from --jobs 1 and --jobs 4 must render byte-identical tables (the
# aggregates are pure functions of the trace bytes), and the same run
# captured in both codecs must answer every query identically.
dune exec bin/xen_numa_trace.exe -- query "$TRACE_DIR/j1.jsonl" > "$TRACE_DIR/q1.txt"
dune exec bin/xen_numa_trace.exe -- query "$TRACE_DIR/j4.jsonl" > "$TRACE_DIR/q4.txt"
cmp "$TRACE_DIR/q1.txt" "$TRACE_DIR/q4.txt" || {
  echo "tier1: FAIL - query output differs between --jobs 1 and --jobs 4 traces" >&2
  exit 1
}
dune exec bin/xen_numa_sim.exe -- run swaptions -t 8 -m xen+ -p first-touch/carrefour \
  --trace "$TRACE_DIR/codec.jsonl" --trace-cap 512 >/dev/null
dune exec bin/xen_numa_sim.exe -- run swaptions -t 8 -m xen+ -p first-touch/carrefour \
  --trace "$TRACE_DIR/codec.bin" --trace-cap 512 >/dev/null
dune exec bin/xen_numa_trace.exe -- query --class page_fault,epoch_boundary --epochs 0-200 \
  --format jsonl --heatmap "$TRACE_DIR/heat_jsonl.csv" "$TRACE_DIR/codec.jsonl" \
  > "$TRACE_DIR/qc_jsonl.txt"
dune exec bin/xen_numa_trace.exe -- query --class page_fault,epoch_boundary --epochs 0-200 \
  --format jsonl --heatmap "$TRACE_DIR/heat_bin.csv" "$TRACE_DIR/codec.bin" \
  > "$TRACE_DIR/qc_bin.txt"
cmp "$TRACE_DIR/qc_jsonl.txt" "$TRACE_DIR/qc_bin.txt" || {
  echo "tier1: FAIL - query output differs between JSONL and binary codecs" >&2
  exit 1
}
cmp "$TRACE_DIR/heat_jsonl.csv" "$TRACE_DIR/heat_bin.csv" || {
  echo "tier1: FAIL - heatmap CSV differs between JSONL and binary codecs" >&2
  exit 1
}
echo "tier1: trace query engine OK (codecs and schedules agree)"

# Query usage errors: an unknown class name and a corrupt trace file
# must both exit non-zero (the class error enumerates the valid names;
# truncation must never be silently accepted).
if dune exec bin/xen_numa_trace.exe -- query --class no_such_class "$TRACE_DIR/codec.jsonl" \
  >/dev/null 2>&1; then
  echo "tier1: FAIL - unknown query class did not exit non-zero" >&2
  exit 1
fi
head -c 100 "$TRACE_DIR/codec.bin" > "$TRACE_DIR/truncated.bin"
if dune exec bin/xen_numa_trace.exe -- query "$TRACE_DIR/truncated.bin" >/dev/null 2>&1; then
  echo "tier1: FAIL - truncated binary trace did not exit non-zero" >&2
  exit 1
fi

# Phase profiler smoke: --profile prints the span table (and SLO
# objectives evaluate without disturbing the run).
dune exec bin/xen_numa_sim.exe -- run swaptions -t 8 --slo p99=10000 --profile \
  > "$TRACE_DIR/profile.txt"
grep -q "phase" "$TRACE_DIR/profile.txt" || {
  echo "tier1: FAIL - --profile printed no span table" >&2
  exit 1
}
grep -q "slo p99" "$TRACE_DIR/profile.txt" || {
  echo "tier1: FAIL - --slo printed no objective row" >&2
  exit 1
}
echo "tier1: profiler and SLO smoke OK"

# Short randomised chaos pass: a fresh QCHECK_SEED (overridable for
# replay) re-runs the fault-injection property suite, whose
# frame-accounting invariant (no leaks, no double frees) fails the
# build on violation.
QCHECK_SEED="${QCHECK_SEED:-$(date +%s)}"
export QCHECK_SEED
echo "tier1: randomised chaos pass (QCHECK_SEED=$QCHECK_SEED)"
dune exec test/test_main.exe -- test faults

# Same randomised seed over the property suites: the buddy partition
# invariant (the memory.buddy filter also matches memory.buddy.offline,
# whose free + allocated + offlined = total invariant covers page
# offlining), the P2M superpage consistency invariant, the top-k heap
# invariant, the batched-vs-per-page P2M equivalence, the intra-run
# sharding invariants (partition tiling, per-vCPU stream independence,
# sharded-equals-unsharded results), the evacuation
# frame-conservation property (post-drain P2M maps exactly the
# pre-failure guest frames, none on an offlined mfn), the
# replica-equivalence invariant (mirrors track the primary through any
# op interleaving), the radix walk monotonicity properties, and the
# fast-forward equivalence property (a delta-replayed run equals the
# naive run bit for bit across randomised policies and shardings).
echo "tier1: randomised property pass (QCHECK_SEED=$QCHECK_SEED)"
dune exec test/test_main.exe -- test memory.buddy
dune exec test/test_main.exe -- test xen.p2m
dune exec test/test_main.exe -- test stats.topk
dune exec test/test_main.exe -- test xen.p2m.batch
dune exec test/test_main.exe -- test engine.shard
dune exec test/test_main.exe -- test engine.ff
dune exec test/test_main.exe -- test policies.evacuation
dune exec test/test_main.exe -- test obs.latency
dune exec test/test_main.exe -- test obs.query
dune exec test/test_main.exe -- test xen.pt
dune exec test/test_main.exe -- test guest.tlb.walk

echo "tier1: OK"
