#!/bin/sh
# Tier-1 verification in one command: full build, full test suite, and
# a parallel-sweep smoke run of the bench driver.
set -e
cd "$(dirname "$0")"

dune build
dune runtest
dune exec bench/main.exe -- tab1 --jobs 2

echo "tier1: OK"
