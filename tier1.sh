#!/bin/sh
# Tier-1 verification in one command: full build, full test suite, and
# a parallel-sweep smoke run of the bench driver.
set -e
cd "$(dirname "$0")"

dune build
dune runtest
dune exec bench/main.exe -- tab1 --jobs 2

# Chaos suite, pinned seed: the degradation grid must complete every
# fault plan (a plan that hits the epoch cap prints a WARNING).
dune exec bench/main.exe -- chaos --jobs 2

# Short randomised chaos pass: a fresh QCHECK_SEED (overridable for
# replay) re-runs the fault-injection property suite, whose
# frame-accounting invariant (no leaks, no double frees) fails the
# build on violation.
QCHECK_SEED="${QCHECK_SEED:-$(date +%s)}"
export QCHECK_SEED
echo "tier1: randomised chaos pass (QCHECK_SEED=$QCHECK_SEED)"
dune exec test/test_main.exe -- test faults

echo "tier1: OK"
