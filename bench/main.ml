(* Benchmark harness: regenerates every table and figure of the paper
   and runs a bechamel microbenchmark suite over the core mechanisms.

   Usage: main.exe [all|tab1|tab2|tab3|tab4|fig1|fig2|fig5|fig6|fig7|
                    fig8|fig9|fig10|dma|batching|ablation|micro]
                   [--jobs N] [--inner-jobs N] [--json FILE] [--trace FILE]
                   [--trace-cap N] [--compare FILE] [--profile]

   --jobs N       run the experiment grids on N domains (default:
                  XEN_NUMA_JOBS or the host's recommended domain count)
   --inner-jobs N shard each run's per-epoch vCPU kernel over N worker
                  domains (default: XEN_NUMA_INNER_JOBS or 1); output
                  is bit-identical at any value
   --json FILE    also write per-section wall-clock times, the bechamel
                  per-op medians and the metrics registry as JSON
                  (metrics collection is enabled for the run)
   --trace FILE   capture an event trace of every simulated run and
                  write the deterministic merge to FILE (JSONL, or
                  binary when FILE ends in .bin)
   --trace-cap N  per-stream trace ring capacity (default 4096)
   --compare FILE regression gate: read a previous --json report and
                  fail (exit 1) if any section shared with it runs
                  more than 25% slower now, or if a section's p99
                  latency regressed by more than 25% against a
                  reference that recorded one
   --profile      enable the runner phase profiler and print the span
                  table at the end (spans also land in the metrics
                  registry for --json)
   --no-fast-forward
                  disable the engine's steady-state fast-forward for
                  every run of the session (bit-identical either way;
                  the escape hatch and the A/B baseline) *)

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '#')

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks over the hot mechanisms                    *)
(* ------------------------------------------------------------------ *)

let bench_p2m () =
  let p2m = Xen.P2m.create ~frames:4096 () in
  let i = ref 0 in
  Bechamel.Staged.stage (fun () ->
      let pfn = !i land 4095 in
      incr i;
      Xen.P2m.set p2m pfn ~mfn:pfn ~writable:true;
      ignore (Xen.P2m.get p2m pfn);
      ignore (Xen.P2m.invalidate p2m pfn))

let bench_buddy () =
  let buddy = Memory.Buddy.create ~base:0 ~frames:65536 in
  Bechamel.Staged.stage (fun () ->
      match Memory.Buddy.alloc buddy ~order:3 with
      | Some base -> Memory.Buddy.free buddy ~base ~order:3
      | None -> assert false)

let bench_pv_queue () =
  let queue = Guest.Pv_queue.create ~partitions:4 ~capacity:128 ~flush:(fun _ -> 0.0) () in
  let i = ref 0 in
  Bechamel.Staged.stage (fun () ->
      incr i;
      Guest.Pv_queue.record queue (Guest.Pv_queue.Release (!i land 0xffff)))

let bench_replay () =
  let ops =
    Array.init 256 (fun i ->
        if i land 1 = 0 then Guest.Pv_queue.Release (i / 2) else Guest.Pv_queue.Alloc (i / 2))
  in
  Bechamel.Staged.stage (fun () ->
      Guest.Pv_queue.replay ops ~f:(fun _ _ -> ()))

let bench_route () =
  let topo = Numa.Amd48.topology () in
  let i = ref 0 in
  Bechamel.Staged.stage (fun () ->
      incr i;
      Numa.Topology.route topo (!i land 7) ((!i lsr 3) land 7))

let bench_cpus_of_node_array () =
  let topo = Numa.Amd48.topology () in
  let i = ref 0 in
  Bechamel.Staged.stage (fun () ->
      incr i;
      ignore (Numa.Topology.cpu_array_of_node topo (!i land 7)))

let bench_pool_fanout () =
  (* Fixed 32-task fan-out over 2 workers: the pool's scheduling
     overhead per batch, not the tasks' cost. *)
  let tasks = Array.init 32 (fun i () -> i * i) in
  Bechamel.Staged.stage (fun () -> ignore (Engine.Pool.run_all ~jobs:2 tasks))

let bench_pool_dispatch () =
  (* 256 trivial tasks on one worker: the pure per-task dispatch cost
     of the atomic-cursor claim path, no spawn or join in the loop. *)
  let tasks = Array.init 256 (fun i () -> i) in
  Bechamel.Staged.stage (fun () -> ignore (Engine.Pool.run_all ~jobs:1 tasks))

let bench_team_section () =
  (* One empty Team barrier: the broadcast + wait cost every sharded
     epoch section pays (members parked on a condvar between calls). *)
  let team = Engine.Pool.Team.create ~workers:2 in
  Bechamel.Staged.stage (fun () -> Engine.Pool.Team.run team (fun _ -> ()))

let bench_counters () =
  let counters = Numa.Counters.create (Numa.Amd48.topology ()) in
  let i = ref 0 in
  Bechamel.Staged.stage (fun () ->
      incr i;
      Numa.Counters.record_accesses counters ~src:(!i land 7) ~dst:((!i lsr 3) land 7)
        ~count:100.0 ~bytes_per_access:64.0)

let bench_carrefour_decide () =
  let rng = Sim.Rng.create ~seed:1 in
  let hot =
    List.init 128 (fun i ->
        {
          Policies.Carrefour.pfn = i;
          node_accesses = Array.init 8 (fun n -> if n = 0 then 100.0 else 5.0);
          read_fraction = 0.5;
        })
  in
  let metrics =
    {
      Policies.Carrefour.System_component.controller_util =
        [| 0.9; 0.1; 0.1; 0.1; 0.1; 0.1; 0.1; 0.1 |];
      max_link_util = 0.5;
      imbalance = 2.0;
      hot_pages = Policies.Carrefour.hot_of_samples hot;
    }
  in
  let config = Policies.Carrefour.User_component.default_config in
  Bechamel.Staged.stage (fun () ->
      Policies.Carrefour.User_component.decide config ~rng ~metrics ~current_node:(fun _ ->
          Some 0))

let bench_zipf () =
  let rng = Sim.Rng.create ~seed:2 in
  Bechamel.Staged.stage (fun () -> Sim.Rng.zipf rng ~n:32768 ~s:0.9)

let bench_eventq () =
  let q = Sim.Eventq.create () in
  Bechamel.Staged.stage (fun () ->
      Sim.Eventq.schedule_after q ~delay:1.0 ();
      ignore (Sim.Eventq.next q))

let bench_ff_guard () =
  (* The fast-forward's per-epoch quiescence check over a 48-thread
     capture: the fixed per-VM cost every replayed epoch pays before
     it may skip the kernels. *)
  let threads = 48 in
  let finish = Array.make threads (-1.0) in
  let doit = Array.make threads 1e9 in
  let remaining = Array.make threads 1e12 in
  let cap = Array.make threads 1e9 in
  let final = Array.make threads 1e9 in
  Bechamel.Staged.stage (fun () ->
      ignore (Engine.Runner.replay_guard ~finish ~doit ~remaining ~cap ~final))

let bench_ff_replay () =
  (* One VM's delta-replay body at 48 threads x 8 nodes: work
     retirement, the counter commit, end-of-epoch accounting and the
     run-length histogram fill — everything a replayed epoch still
     does, with the O(threads x nodes) kernels skipped. *)
  let topo = Numa.Amd48.topology () in
  let counters = Numa.Counters.create topo in
  let threads = 48 in
  let nodes = 8 in
  let doit = Array.make threads 1.0 in
  let dst = Array.init (threads * nodes) (fun i -> float_of_int (1 + (i mod nodes))) in
  let total = Array.make threads 36.0 in
  let lat = Array.make threads 312.5 in
  let remaining = Array.make threads 1e12 in
  let final = Array.make threads 1e3 in
  let hist = Sim.Stats.Histogram.create () in
  Bechamel.Staged.stage (fun () ->
      for t = 0 to threads - 1 do
        if doit.(t) > 0.0 then begin
          remaining.(t) <- remaining.(t) -. final.(t);
          let base = t * nodes in
          for n = 0 to nodes - 1 do
            if dst.(base + n) > 0.0 then
              Numa.Counters.record_accesses counters ~src:(t mod nodes) ~dst:n
                ~count:dst.(base + n) ~bytes_per_access:64.0
          done
        end
      done;
      Numa.Counters.end_epoch counters ~duration:0.1;
      let run_v = ref 0.0 in
      let run_n = ref 0 in
      for t = 0 to threads - 1 do
        if total.(t) > 0.0 then begin
          if !run_n > 0 && lat.(t) = !run_v then incr run_n
          else begin
            if !run_n > 0 then Sim.Stats.Histogram.add_n hist !run_v !run_n;
            run_v := lat.(t);
            run_n := 1
          end
        end
      done;
      if !run_n > 0 then Sim.Stats.Histogram.add_n hist !run_v !run_n)

let bench_engine_epoch () =
  (* One full small run: the per-epoch cost of the whole engine. *)
  let app =
    match Workloads.Catalogue.find "swaptions" with Some a -> a | None -> assert false
  in
  Bechamel.Staged.stage (fun () ->
      let vm = Engine.Config.vm ~threads:8 ~policy:Policies.Spec.round_4k app in
      let cfg = Engine.Config.make ~seed:1 ~max_epochs:10 ~mode:Engine.Config.Linux [ vm ] in
      ignore (Engine.Runner.run cfg))

let micro_tests =
  let open Bechamel in
  [
    Test.make ~name:"p2m set/get/invalidate" (bench_p2m ());
    Test.make ~name:"buddy alloc+free order3" (bench_buddy ());
    Test.make ~name:"pv_queue record(+flush)" (bench_pv_queue ());
    Test.make ~name:"queue replay (256 ops)" (bench_replay ());
    Test.make ~name:"topology route" (bench_route ());
    Test.make ~name:"cpus_of_node (array)" (bench_cpus_of_node_array ());
    Test.make ~name:"pool fanout 32x2" (bench_pool_fanout ());
    Test.make ~name:"pool dispatch 256x1" (bench_pool_dispatch ());
    Test.make ~name:"team barrier (2 members)" (bench_team_section ());
    Test.make ~name:"counters record" (bench_counters ());
    Test.make ~name:"carrefour decide (128 hot)" (bench_carrefour_decide ());
    Test.make ~name:"rng zipf 32k" (bench_zipf ());
    Test.make ~name:"eventq schedule+next" (bench_eventq ());
    Test.make ~name:"quiescence check" (bench_ff_guard ());
    Test.make ~name:"epoch delta replay" (bench_ff_replay ());
    Test.make ~name:"engine 10-epoch run" (bench_engine_epoch ());
  ]

(* Per-op medians of the last micro run, for the --json report. *)
let micro_estimates : (string * float) list ref = ref []

let run_micro () =
  section "Microbenchmarks (bechamel)";
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  micro_estimates := [];
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let result = Benchmark.run cfg instances elt in
          let estimate = Analyze.one ols Toolkit.Instance.monotonic_clock result in
          match Analyze.OLS.estimates estimate with
          | Some [ t ] ->
              micro_estimates := (Test.Elt.name elt, t) :: !micro_estimates;
              Printf.printf "%-28s %12.1f ns/op\n" (Test.Elt.name elt) t
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n" (Test.Elt.name elt))
        (Test.elements test))
    micro_tests;
  micro_estimates := List.rev !micro_estimates

(* ------------------------------------------------------------------ *)
(* Experiment sections                                                 *)
(* ------------------------------------------------------------------ *)

let sections : (string * (unit -> unit)) list =
  [
    ("tab2", fun () -> section "Table 2"; Experiments.Single_vm.print_tab2 ());
    ("tab3", fun () -> section "Table 3"; Experiments.Micro.print_tab3 ());
    ("fig5", fun () -> section "Figure 5"; Experiments.Micro.print_fig5 ());
    ("dma", fun () -> section "DMA paths (Sections 2.2.2, 5.3.1, 4.4.1)"; Experiments.Micro.print_dma ());
    ( "batching",
      fun () -> section "Hypercall batching (Sections 4.2.3-4.2.4)"; Experiments.Micro.print_batching () );
    ("tab1", fun () -> section "Table 1"; Experiments.Single_vm.print_tab1 ());
    ("fig1", fun () -> section "Figure 1"; Experiments.Single_vm.print_fig1 ());
    ("fig2", fun () -> section "Figure 2"; Experiments.Single_vm.print_fig2 ());
    ("fig6", fun () -> section "Figure 6"; Experiments.Single_vm.print_fig6 ());
    ("fig7", fun () -> section "Figure 7"; Experiments.Single_vm.print_fig7 ());
    ("tab4", fun () -> section "Table 4"; Experiments.Single_vm.print_tab4 ());
    ("fig8", fun () -> section "Figure 8"; Experiments.Multi_vm.print_fig8 ());
    ("fig9", fun () -> section "Figure 9"; Experiments.Multi_vm.print_fig9 ());
    ("fig10", fun () -> section "Figure 10"; Experiments.Single_vm.print_fig10 ());
    ( "ablation",
      fun () ->
        section "Ablations";
        Experiments.Ablation.print_replay_direction ();
        Experiments.Ablation.print_mcs ();
        Experiments.Ablation.print_round1g_fragmentation ();
        Experiments.Ablation.print_replication ();
        Experiments.Ablation.print_huge_pages ();
        Experiments.Ablation.print_carrefour_heuristics () );
    ( "motivation",
      fun () -> section "Motivation (Section 1)"; Experiments.Motivation.print () );
    ( "generality",
      fun () -> section "Topology generality"; Experiments.Generality.print () );
    ( "chaos",
      fun () ->
        section "Chaos (fault injection and graceful degradation)";
        Experiments.Chaos.print () );
    ( "hugepage",
      fun () ->
        section "Hugepage (2 MiB P2M superpages on/off)";
        Experiments.Hugepage.print () );
    ( "mitosis",
      fun () ->
        section "Mitosis (radix page-walk pricing and PT replication)";
        Experiments.Mitosis.print () );
    ( "ras",
      fun () ->
        section "Memory RAS (ECC errors and node failure)";
        Experiments.Ras.print () );
    ("micro", run_micro);
  ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Revision of the working tree, for provenance in the JSON report.
   Reads .git directly (no subprocess): HEAD, the ref file it points
   to, or packed-refs.  XEN_NUMA_GIT_REV overrides (CI checkouts). *)
let git_rev () =
  match Sys.getenv_opt "XEN_NUMA_GIT_REV" with
  | Some rev when rev <> "" -> rev
  | Some _ | None -> (
      let first_line path =
        try
          let ic = open_in path in
          let line = try String.trim (input_line ic) with End_of_file -> "" in
          close_in ic;
          if line = "" then None else Some line
        with Sys_error _ -> None
      in
      let packed_ref git_dir refname =
        try
          let ic = open_in (Filename.concat git_dir "packed-refs") in
          let found = ref None in
          (try
             while !found = None do
               let line = input_line ic in
               match String.index_opt line ' ' with
               | Some i when String.sub line (i + 1) (String.length line - i - 1) = refname ->
                   found := Some (String.sub line 0 i)
               | _ -> ()
             done
           with End_of_file -> ());
          close_in ic;
          !found
        with Sys_error _ -> None
      in
      let rec from_dir dir =
        let git_dir = Filename.concat dir ".git" in
        match first_line (Filename.concat git_dir "HEAD") with
        | Some line ->
            if String.length line > 5 && String.sub line 0 5 = "ref: " then begin
              let refname = String.trim (String.sub line 5 (String.length line - 5)) in
              match first_line (Filename.concat git_dir refname) with
              | Some rev -> Some rev
              | None -> packed_ref git_dir refname
            end
            else Some line
        | None ->
            let parent = Filename.dirname dir in
            if parent = dir then None else from_dir parent
      in
      match from_dir (Sys.getcwd ()) with Some rev -> rev | None -> "unknown")

(* Per-section p99 latency: the runner merges every VM's latency
   histogram into the "engine.vm.latency_cycles" metric, so the p99 of
   the section is the p99 of the histogram delta across it (Histogram
   diff of snapshots taken before and after the section ran).  None
   when metrics are off or the section ran no epochs. *)
let section_p99 ~before =
  match Obs.Metrics.histogram_copy "engine.vm.latency_cycles" with
  | None -> None
  | Some now ->
      let window =
        match before with None -> now | Some b -> Sim.Stats.Histogram.diff now b
      in
      if Sim.Stats.Histogram.count window = 0 then None
      else Some (Sim.Stats.Histogram.percentile window 99.0)

let write_json file ~jobs ~timings ~total =
  let oc =
    try open_out file
    with Sys_error msg ->
      Printf.eprintf "cannot write --json output: %s\n" msg;
      exit 1
  in
  (* Oversubscription marker: with more worker domains than host
     cores, wall-clock numbers measure scheduler contention as much as
     the code, so flag the report (and warn) instead of letting a
     later --compare read noise as regression. *)
  let host_cores = Domain.recommended_domain_count () in
  let oversubscribed = jobs > host_cores in
  if oversubscribed then
    Printf.eprintf
      "warning: --jobs %d exceeds the host's %d cores; wall-clock timings are \
       oversubscribed and the report is marked \"oversubscribed\": true\n"
      jobs host_cores;
  let entry (name, seconds, p99) =
    match p99 with
    | None -> Printf.sprintf "    {\"name\": \"%s\", \"wall_s\": %.3f}" (json_escape name) seconds
    | Some p ->
        Printf.sprintf "    {\"name\": \"%s\", \"wall_s\": %.3f, \"lat_p99\": %.6g}"
          (json_escape name) seconds p
  in
  let micro (name, ns) = Printf.sprintf "    {\"name\": \"%s\", \"ns_per_op\": %.1f}" (json_escape name) ns in
  let metrics = List.map (fun line -> "    " ^ line) (Obs.Metrics.to_json_entries ()) in
  Printf.fprintf oc
    "{\n\
    \  \"git_rev\": \"%s\",\n\
    \  \"jobs\": %d,\n\
    \  \"inner_jobs\": %d,\n\
    \  \"host_cores\": %d,\n%s\
    \  \"total_wall_s\": %.3f,\n\
    \  \"sections\": [\n%s\n  ],\n\
    \  \"micro\": [\n%s\n  ],\n\
    \  \"metrics\": [\n%s\n  ]\n\
     }\n"
    (json_escape (git_rev ()))
    jobs
    (Engine.Pool.default_inner_jobs ())
    host_cores
    (if oversubscribed then "  \"oversubscribed\": true,\n" else "")
    total
    (String.concat ",\n" (List.map entry timings))
    (String.concat ",\n" (List.map micro !micro_estimates))
    (String.concat ",\n" metrics);
  close_out oc;
  Printf.printf "\nwrote %s\n" file

(* --compare: regression gate against a previously committed --json
   report.  Every section of this run that the reference also timed
   gets a delta line; a section more than [threshold] slower than the
   reference fails the whole run (exit 1).  Sections absent from the
   reference (new experiments) pass trivially.  When the reference was
   recorded at a different --jobs setting the table is printed for
   information only: domain-count overhead dominates wall-clock on
   small hosts, so cross-jobs deltas say nothing about the code.

   The same threshold gates the per-section p99 latency when BOTH
   sides recorded one ("lat_p99" in the sections array): unlike
   wall-clock, p99 is deterministic for a given seed, so a genuine
   regression cannot hide behind host noise.  References from before
   the field existed gate on wall-clock only. *)
let compare_threshold = 0.25

let compare_report file ~jobs ~timings =
  let text =
    try
      let ic = open_in file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error msg ->
      Printf.eprintf "cannot read --compare reference: %s\n" msg;
      exit 1
  in
  let old =
    match Obs.Json.of_string_opt text with
    | Some j -> j
    | None ->
        Printf.eprintf "--compare: %s is not valid JSON\n" file;
        exit 1
  in
  let old_sections =
    match Obs.Json.member "sections" old with
    | Some (Obs.Json.List entries) ->
        List.filter_map
          (fun e ->
            match (Obs.Json.member "name" e, Obs.Json.member "wall_s" e) with
            | Some name, Some wall -> (
                match (Obs.Json.to_string name, Obs.Json.to_float wall) with
                | Some n, Some w ->
                    let p99 = Option.bind (Obs.Json.member "lat_p99" e) Obs.Json.to_float in
                    Some (n, (w, p99))
                | _ -> None)
            | _ -> None)
          entries
    | Some _ | None ->
        Printf.eprintf "--compare: %s has no sections array\n" file;
        exit 1
  in
  let old_rev =
    match Option.bind (Obs.Json.member "git_rev" old) Obs.Json.to_string with
    | Some rev -> rev
    | None -> "unknown"
  in
  let old_jobs = Option.bind (Obs.Json.member "jobs" old) Obs.Json.to_int in
  let gating = match old_jobs with Some j -> j = jobs | None -> true in
  Printf.printf "\nComparison vs %s (rev %s)\n" file old_rev;
  Printf.printf "%-12s %10s %10s %9s %9s %11s\n" "section" "ref (s)" "now (s)" "delta" "speedup"
    "p99 delta";
  let regressed = ref [] in
  let ref_sum = ref 0.0 and now_sum = ref 0.0 in
  List.iter
    (fun (name, now, now_p99) ->
      (* The p99 column gates only when both runs recorded one: a
         reference written before the field existed (or a metrics-off
         run) stays wall-clock-only. *)
      let p99_cell =
        match (List.assoc_opt name old_sections, now_p99) with
        | Some (_, Some ref_p99), Some p99 when ref_p99 > 0.0 ->
            let d = (p99 -. ref_p99) /. ref_p99 in
            if d > compare_threshold then
              regressed := (name ^ " (p99 latency)", d) :: !regressed;
            Printf.sprintf "%+.1f%%" (100.0 *. d)
        | _ -> "-"
      in
      match List.assoc_opt name old_sections with
      | None -> Printf.printf "%-12s %10s %10.2f %9s %9s %11s\n" name "-" now "new" "-" p99_cell
      | Some (before, _) when before <= 0.0 ->
          Printf.printf "%-12s %10.2f %10.2f %9s %9s %11s\n" name before now "-" "-" p99_cell
      | Some (before, _) ->
          let delta = (now -. before) /. before in
          (* speedup = ref/now: >1.00x is faster than the reference. *)
          let speedup = if now > 0.0 then before /. now else Float.infinity in
          ref_sum := !ref_sum +. before;
          now_sum := !now_sum +. now;
          Printf.printf "%-12s %10.2f %10.2f %+8.1f%% %8.2fx %11s\n" name before now
            (100.0 *. delta) speedup p99_cell;
          if delta > compare_threshold then regressed := (name, delta) :: !regressed)
    timings;
  (* Sections present in only one of the two files are informational:
     a reference from before a section existed (or a run of a subset)
     must not fail the gate. *)
  List.iter
    (fun (name, (before, _)) ->
      if not (List.exists (fun (n, _, _) -> n = name) timings) then
        Printf.printf "%-12s %10.2f %10s %9s %9s\n" name before "-" "ref-only" "-")
    old_sections;
  if !now_sum > 0.0 && !ref_sum > 0.0 then
    Printf.printf "%-12s %10.2f %10.2f %9s %8.2fx\n" "(shared)" !ref_sum !now_sum "-"
      (!ref_sum /. !now_sum);
  if not gating then
    Printf.printf "reference used --jobs %d, this run --jobs %d: informational only, not gated\n"
      (Option.value old_jobs ~default:0) jobs
  else
  match List.rev !regressed with
  | [] ->
      Printf.printf "no section regressed more than %.0f%% (wall-clock or p99 latency)\n"
        (100.0 *. compare_threshold)
  | bad ->
      List.iter
        (fun (name, delta) ->
          Printf.eprintf "REGRESSION: %s is %.1f%% slower than %s (limit %.0f%%)\n" name
            (100.0 *. delta) old_rev
            (100.0 *. compare_threshold))
        bad;
      exit 1

let usage () =
  Printf.eprintf
    "usage: main.exe [sections...] [--jobs N] [--inner-jobs N] [--json FILE] [--trace FILE]\n\
    \       [--trace-cap N] [--compare FILE] [--profile] [--no-fast-forward]\n\
     available sections: all %s\n"
    (String.concat " " (List.map fst sections));
  exit 1

type opts = {
  mutable names : string list;
  mutable jobs : int option;
  mutable inner_jobs : int option;
  mutable json : string option;
  mutable trace : string option;
  mutable trace_cap : int;
  mutable compare_to : string option;
  mutable profile : bool;
  mutable no_fast_forward : bool;
}

let () =
  let o =
    { names = []; jobs = None; inner_jobs = None; json = None; trace = None; trace_cap = 4096;
      compare_to = None; profile = false; no_fast_forward = false }
  in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            o.jobs <- Some j;
            parse rest
        | Some _ | None ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
            usage ())
    | "--inner-jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            o.inner_jobs <- Some j;
            parse rest
        | Some _ | None ->
            Printf.eprintf "--inner-jobs expects a positive integer, got %S\n" n;
            usage ())
    | "--json" :: file :: rest ->
        o.json <- Some file;
        parse rest
    | "--compare" :: file :: rest ->
        o.compare_to <- Some file;
        parse rest
    | "--trace" :: file :: rest ->
        o.trace <- Some file;
        parse rest
    | "--profile" :: rest ->
        o.profile <- true;
        parse rest
    | "--no-fast-forward" :: rest ->
        o.no_fast_forward <- true;
        parse rest
    | "--trace-cap" :: n :: rest -> (
        match int_of_string_opt n with
        | Some c when c >= 1 ->
            o.trace_cap <- c;
            parse rest
        | Some _ | None ->
            Printf.eprintf "--trace-cap expects a positive integer, got %S\n" n;
            usage ())
    | ("--jobs" | "--inner-jobs" | "--json" | "--trace" | "--trace-cap" | "--compare"
      | "--help" | "-h") :: _ ->
        usage ()
    | name :: rest ->
        o.names <- name :: o.names;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Process-wide default, like set_default_jobs: every run the
     experiment grids spawn sees it without threading a flag through
     them.  The fast-forward is bit-identical either way, so this only
     trades speed for an A/B check. *)
  if o.no_fast_forward then Engine.Config.set_default_fast_forward false;
  (match o.jobs with Some n -> Engine.Pool.set_default_jobs n | None -> ());
  (match o.inner_jobs with Some n -> Engine.Pool.set_default_inner_jobs n | None -> ());
  let requested =
    match List.rev o.names with [] | [ "all" ] -> List.map fst sections | names -> names
  in
  List.iter
    (fun name ->
      if not (List.mem_assoc name sections) then begin
        Printf.eprintf "unknown section %S\n" name;
        usage ()
      end)
    requested;
  (* --json reports the metrics registry, so collection goes on for the
     whole run; --compare needs it too (the per-section p99 gate reads
     the engine.vm.latency_cycles histogram); --trace installs the
     capture session. *)
  if o.json <> None || o.compare_to <> None then Obs.Metrics.set_enabled true;
  if o.profile then begin
    Obs.Profile.reset ();
    Obs.Profile.set_enabled true
  end;
  let session =
    match o.trace with
    | None -> None
    | Some _ ->
        let s = Obs.Trace.create ~capacity:o.trace_cap () in
        Obs.Trace.install s;
        Some s
  in
  let t_start = Unix.gettimeofday () in
  let timings =
    List.map
      (fun name ->
        let f = List.assoc name sections in
        let before = Obs.Metrics.histogram_copy "engine.vm.latency_cycles" in
        let t0 = Unix.gettimeofday () in
        f ();
        let dt = Unix.gettimeofday () -. t0 in
        (name, dt, section_p99 ~before))
      requested
  in
  let total = Unix.gettimeofday () -. t_start in
  Printf.printf "\n%-12s %10s %10s\n" "section" "wall (s)" "p99 (cy)";
  List.iter
    (fun (name, dt, p99) ->
      Printf.printf "%-12s %10.2f %10s\n" name dt
        (match p99 with Some p -> Printf.sprintf "%.0f" p | None -> "-"))
    timings;
  Printf.printf "%-12s %10.2f  (%d jobs)\n" "total" total (Engine.Pool.default_jobs ());
  if o.profile then begin
    Obs.Profile.commit_metrics ();
    print_newline ();
    print_string (Obs.Profile.render ())
  end;
  (match (session, o.trace) with
  | Some s, Some file ->
      Obs.Trace.commit_metrics s;
      Obs.Trace.write_file s file;
      Obs.Trace.uninstall ();
      Printf.printf "wrote %s (%d streams)\n" file (Obs.Trace.stream_count s)
  | _ -> ());
  (match o.json with
  | Some file -> write_json file ~jobs:(Engine.Pool.default_jobs ()) ~timings ~total
  | None -> ());
  match o.compare_to with
  | Some file -> compare_report file ~jobs:(Engine.Pool.default_jobs ()) ~timings
  | None -> ()
