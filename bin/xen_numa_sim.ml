(* xen-numa-sim: run one application under a chosen mode and NUMA
   policy on a simulated NUMA host (the paper's AMD48 by default). *)

open Cmdliner

let mode_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "linux" | "native" -> Ok Engine.Config.Linux
    | "xen" -> Ok Engine.Config.Xen
    | "xen+" | "xenplus" | "xen-plus" -> Ok Engine.Config.Xen_plus
    | _ -> Error (`Msg (Printf.sprintf "unknown mode %S (linux|xen|xen+)" s))
  in
  let print fmt mode = Format.pp_print_string fmt (Engine.Config.mode_name mode) in
  Arg.conv (parse, print)

let policy_conv =
  let parse s =
    match Policies.Spec.of_string s with Ok p -> Ok p | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Policies.Spec.pp)

let app_conv =
  let parse s =
    match Workloads.Catalogue.find s with
    | Some app -> Ok app
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown application %S; try one of: %s" s
                (String.concat ", " Workloads.Catalogue.names)))
  in
  let print fmt app = Format.pp_print_string fmt app.Workloads.App.name in
  Arg.conv (parse, print)

let app_arg =
  Arg.(required & pos 0 (some app_conv) None & info [] ~docv:"APP" ~doc:"Application to run.")

let mode_arg =
  Arg.(value & opt mode_conv Engine.Config.Xen_plus & info [ "m"; "mode" ] ~docv:"MODE"
         ~doc:"Execution mode: linux, xen or xen+.")

let policy_arg =
  Arg.(value & opt policy_conv Policies.Spec.round_4k
       & info [ "p"; "policy" ] ~docv:"POLICY"
           ~doc:"NUMA policy: first-touch, round-4k, round-1g, optionally with /carrefour.")

let threads_arg =
  Arg.(value & opt int 48 & info [ "t"; "threads" ] ~docv:"N" ~doc:"Threads (= vCPUs).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let mcs_arg =
  Arg.(value & flag & info [ "mcs" ] ~doc:"Replace pthread mutex/condvar by MCS spin loops.")

let huge_arg =
  Arg.(value & flag & info [ "huge-pages" ] ~doc:"Back the application with 2 MiB pages.")

let pt_walk_arg =
  Arg.(value & flag
       & info [ "pt-walk" ]
           ~doc:"Price TLB misses with the radix page-walk model: each walk level \
                 is charged at the latency of the node holding that page-table \
                 level, instead of the flat walk constant.  Off, walk costs are \
                 bit-identical to the flat model.  Ignored in linux mode.")

let replicate_pt_arg =
  Arg.(value & flag
       & info [ "replicate-pt" ]
           ~doc:"Mirror the page tables onto every home node (the Mitosis \
                 policy): page walks resolve from the local mirror, and every \
                 P2M update pays a per-mirror write-propagation cost.  Most \
                 useful together with $(b,--pt-walk).  Ignored in linux mode.")

let unpinned_arg =
  Arg.(value & flag & info [ "unpinned" ]
         ~doc:"Let the credit scheduler migrate vCPUs instead of pinning them.")

let machine_conv =
  let parse s =
    match Numa.Machine_desc.find s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown machine %S (amd48|intel32)" s))
  in
  let print fmt m = Format.pp_print_string fmt m.Numa.Machine_desc.name in
  Arg.conv (parse, print)

let machine_arg =
  Arg.(value & opt machine_conv Numa.Machine_desc.amd48
       & info [ "machine" ] ~docv:"HOST" ~doc:"Simulated host: amd48 or intel32.")

let faults_conv =
  let parse s =
    match Faults.Plan.of_string s with Ok p -> Ok p | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Faults.Plan.pp)

let faults_arg =
  Arg.(value & opt faults_conv Faults.Plan.empty
       & info [ "faults" ] ~docv:"PLAN"
           ~doc:"Fault-injection plan: comma-separated $(i,site=value[\\@FROM[-UNTIL]]) \
                 elements where site is one of alloc, node-off, migrate, batch-loss, \
                 op-drop, hypercall, iommu, stall, ecc-ce, ecc-ue, node_fail.  \
                 Examples: $(b,migrate=1.0), $(b,alloc=0.3\\@50-150,stall=0.01), \
                 $(b,node-off=2\\@100-), $(b,ecc-ce=0.5), $(b,node_fail=1.0\\@50) \
                 (a random node's bandwidth collapses over a 50-epoch drain window, \
                 then the node goes offline and every domain evacuates it).  The \
                 injection stream is derived from the run seed, so fault runs are \
                 reproducible.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Capture an event trace of the run and write it to $(docv) \
                 (JSONL, or the compact binary format when $(docv) ends in \
                 $(b,.bin)).  Summarise it with $(b,xen-numa-trace).")

let trace_cap_arg =
  Arg.(value & opt int 4096
       & info [ "trace-cap" ] ~docv:"N"
           ~doc:"Per-stream trace ring capacity; the ring keeps the $(docv) most \
                 recent events and counts the rest as dropped.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Collect the metrics registry (counters, gauges, latency \
                 histograms) during the run and print it afterwards.")

let slo_conv =
  let parse s =
    match Engine.Config.parse_slo s with Ok o -> Ok o | Error msg -> Error (`Msg msg)
  in
  let print fmt slo =
    Format.pp_print_string fmt
      (String.concat "," (List.map (fun (m, t) -> Printf.sprintf "%s=%g" m t) slo))
  in
  Arg.conv (parse, print)

let slo_arg =
  Arg.(value & opt slo_conv []
       & info [ "slo" ] ~docv:"OBJECTIVES"
           ~doc:"Latency SLO objectives, comma-separated $(i,METRIC=TARGET) pairs where \
                 metric is one of mean, p50, p95, p99, p999 and target is a latency \
                 budget in cycles (e.g. $(b,p99=300,mean=220)).  Each objective is \
                 evaluated per domain every epoch and at end of run; the result lists \
                 per-objective violation epochs and burn rate.  Purely observational: \
                 a run with SLOs is bit-identical to one without.")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Enable the runner phase profiler (kernel shards, sequential \
                 reductions, carrefour feed, P2M batches, PV flushes, manager \
                 ticks) and print the span table after the run.")

let no_fast_forward_arg =
  Arg.(value & flag
       & info [ "no-fast-forward" ]
           ~doc:"Disable the steady-state fast-forward and run every epoch \
                 through the full kernels.  The fast-forward replays quiescent \
                 epochs from captured deltas with bit-identical results and \
                 traces, so this flag only trades speed for nothing — it exists \
                 as the escape hatch and for A/B verification.")

let inner_jobs_arg =
  Arg.(value & opt int 1
       & info [ "inner-jobs" ] ~docv:"N"
           ~doc:"Shard the per-epoch vCPU kernel over $(docv) worker domains \
                 within this single run.  Results and traces are bit-identical \
                 for every value: cross-vCPU accumulation always happens in a \
                 sequential fixed-order reduction.  Fault-injection runs \
                 ignore this and run unsharded.")

let run_app app mode policy threads seed mcs huge_pages pt_walk replicate_pt unpinned machine
    faults trace trace_cap metrics inner_jobs slo profile no_fast_forward =
  if trace_cap <= 0 then begin
    prerr_endline "xen-numa-sim: --trace-cap must be positive";
    exit 1
  end;
  if inner_jobs < 1 then begin
    prerr_endline "xen-numa-sim: --inner-jobs must be >= 1";
    exit 1
  end;
  let session =
    match trace with
    | None -> None
    | Some _ ->
        let s = Obs.Trace.create ~capacity:trace_cap () in
        Obs.Trace.install s;
        Some s
  in
  if metrics then Obs.Metrics.set_enabled true;
  if profile then begin
    Obs.Profile.reset ();
    Obs.Profile.set_enabled true
  end;
  let vm =
    Engine.Config.vm ~threads ~use_mcs:mcs ~huge_pages ~pt_walk ~replicate_pt
      ~pinned:(not unpinned) ~policy app
  in
  let cfg =
    Engine.Config.make ~seed ~machine ~faults ~inner_jobs ~slo
      ~fast_forward:(not no_fast_forward) ~mode [ vm ]
  in
  let result = Engine.Runner.run cfg in
  Format.printf "%a@." Engine.Result.pp result;
  if profile then begin
    if metrics then Obs.Profile.commit_metrics ();
    Format.printf "@.%s" (Obs.Profile.render ())
  end;
  (match (session, trace) with
  | Some s, Some file ->
      (* Mirror per-class emission totals into the registry before the
         snapshot is printed, so the file's summary and the registry
         agree. *)
      Obs.Trace.commit_metrics s;
      Obs.Trace.write_file s file;
      Obs.Trace.uninstall ();
      Format.printf "trace written to %s@." file
  | _ -> ());
  if metrics then Format.printf "@.%s" (Obs.Metrics.render ())

let run_cmd =
  let doc = "Run one application under a NUMA policy" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run_app $ app_arg $ mode_arg $ policy_arg $ threads_arg $ seed_arg $ mcs_arg
          $ huge_arg $ pt_walk_arg $ replicate_pt_arg $ unpinned_arg $ machine_arg $ faults_arg
          $ trace_arg $ trace_cap_arg $ metrics_arg $ inner_jobs_arg $ slo_arg $ profile_arg
          $ no_fast_forward_arg)

let list_apps () =
  Report.Table.print
    ~header:[ "app"; "suite"; "class"; "footprint"; "disk MB/s"; "ctx k/s"; "best linux"; "best xen+" ]
    (List.map
       (fun app ->
         let p = app.Workloads.App.paper in
         [
           app.Workloads.App.name;
           Workloads.App.suite_name app.Workloads.App.suite;
           Workloads.App.class_name p.Workloads.App.class_;
           Printf.sprintf "%d MB" app.Workloads.App.footprint_mb;
           Printf.sprintf "%.0f" app.Workloads.App.disk_mb_s;
           Printf.sprintf "%.1f" app.Workloads.App.ctx_switch_k_s;
           Policies.Spec.name p.Workloads.App.best_linux;
           Policies.Spec.name p.Workloads.App.best_xen;
         ])
       Workloads.Catalogue.all)

let list_cmd =
  let doc = "List the 29 applications of the catalogue" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_apps $ const ())

let show_topo () =
  let topo = Numa.Amd48.topology () in
  Format.printf "%a@." Numa.Topology.pp topo;
  Format.printf "@.Latency (cycles): L1 %.0f, L2 %.0f, L3 %.0f@."
    (Numa.Latency.cache_cycles Numa.Amd48.latency Numa.Latency.L1)
    (Numa.Latency.cache_cycles Numa.Amd48.latency Numa.Latency.L2)
    (Numa.Latency.cache_cycles Numa.Amd48.latency Numa.Latency.L3);
  List.iter
    (fun hops ->
      Format.printf "memory %d hop(s): %.0f cycles idle, %.0f contended@." hops
        (Numa.Latency.mem_cycles Numa.Amd48.latency ~hops ~saturation:0.0)
        (Numa.Latency.mem_cycles Numa.Amd48.latency ~hops ~saturation:1.0))
    [ 0; 1; 2 ]

let topo_cmd =
  let doc = "Print the AMD48 topology and latency model" in
  Cmd.v (Cmd.info "topology" ~doc) Term.(const show_topo $ const ())

let compare_policies app mode threads seed =
  let specs = Policies.Spec.all in
  let rows =
    List.map
      (fun policy ->
        let vm = Engine.Config.vm ~threads ~policy app in
        let cfg = Engine.Config.make ~seed ~mode [ vm ] in
        let result = Engine.Runner.run cfg in
        let vm_result = Engine.Result.single result in
        ( Policies.Spec.name policy,
          vm_result.Engine.Result.completion,
          result.Engine.Result.imbalance,
          result.Engine.Result.interconnect_load,
          vm_result.Engine.Result.local_fraction ))
      specs
  in
  let best = List.fold_left (fun acc (_, c, _, _, _) -> Float.min acc c) Float.infinity rows in
  Report.Table.print
    ~header:[ "policy"; "completion"; "vs best"; "imbalance"; "interconnect"; "local" ]
    (List.map
       (fun (name, completion, imb, ic, local) ->
         [
           name;
           Report.Table.fmt_secs completion;
           Report.Table.fmt_ratio (completion /. best);
           Report.Table.fmt_pct imb;
           Report.Table.fmt_pct ic;
           Report.Table.fmt_pct local;
         ])
       rows)

let compare_cmd =
  let doc = "Run one application under every NUMA policy and compare" in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const compare_policies $ app_arg $ mode_arg $ threads_arg $ seed_arg)

let advise app mode seed =
  let r = Engine.Advisor.recommend ~seed ~mode app in
  Format.printf "%a@." Engine.Advisor.pp_recommendation r

let advise_cmd =
  let doc = "Profile an application and recommend a NUMA policy" in
  Cmd.v (Cmd.info "advise" ~doc) Term.(const advise $ app_arg $ mode_arg $ seed_arg)

let microsim machine =
  let topo = machine.Numa.Machine_desc.topology () in
  let freq = machine.Numa.Machine_desc.freq_hz in
  Format.printf "request-level memory simulation on %s@." machine.Numa.Machine_desc.name;
  List.iter
    (fun hops ->
      if hops <= Numa.Topology.diameter topo then begin
        let idle = Microsim.Memsim.latency_probe ~topo ~threads:1 ~hops () in
        let busy =
          Microsim.Memsim.latency_probe ~topo ~threads:(Numa.Topology.cpu_count topo) ~hops ()
        in
        Format.printf "%d hop(s): idle %.0f cycles, contended %.0f cycles@." hops
          (idle.Microsim.Memsim.mean_latency_ns *. freq /. 1e9)
          (busy.Microsim.Memsim.mean_latency_ns *. freq /. 1e9)
      end)
    [ 0; 1; 2 ];
  Format.printf "random-access controller efficiency: %.2f@."
    (Microsim.Memsim.random_access_efficiency ~topo ())

let microsim_cmd =
  let doc = "Run the request-level memory-system probes" in
  Cmd.v (Cmd.info "microsim" ~doc) Term.(const microsim $ machine_arg)

let main =
  let doc = "NUMA policies behind a hypervisor interface (EuroSys'17 reproduction)" in
  Cmd.group (Cmd.info "xen-numa-sim" ~doc)
    [ run_cmd; list_cmd; topo_cmd; compare_cmd; advise_cmd; microsim_cmd ]

let () = exit (Cmd.eval main)
