(* xen-numa-trace: xenalyze-style summariser and checker for trace
   files produced by xen-numa-sim --trace (JSONL or binary). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | data -> (
      match Obs.Codec.read data with
      | export -> Ok export
      | exception Obs.Codec.Corrupt msg ->
          Error (Printf.sprintf "%s: corrupt trace: %s" path msg)
      | exception Obs.Json.Parse_error msg ->
          Error (Printf.sprintf "%s: bad JSON: %s" path msg))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace file to read.")

let timeline_arg =
  Arg.(value & opt int 24
       & info [ "timeline" ] ~docv:"ROWS" ~doc:"Epoch-timeline rows to print (default 24).")

let summary rows path =
  match load path with
  | Error msg ->
      prerr_endline ("xen-numa-trace: " ^ msg);
      exit 1
  | Ok export -> print_string (Obs.Summary.render ~timeline_rows:rows (Obs.Summary.of_export export))

let summary_cmd =
  let doc = "Summarise a trace: per-class counts, inter-arrival stats, epoch timeline" in
  Cmd.v (Cmd.info "summary" ~doc) Term.(const summary $ timeline_arg $ file_arg)

(* Structural validation beyond what the codec already rejects: the
   ring accounting invariant per stream and the merge-order contract. *)
let check path =
  match load path with
  | Error msg ->
      prerr_endline ("xen-numa-trace: " ^ msg);
      exit 1
  | Ok export ->
      let streams = export.Obs.Codec.streams in
      let kept = Array.make (Array.length streams) 0 in
      let failures = ref [] in
      let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
      List.iter
        (fun (m : Obs.Event.merged) ->
          if m.Obs.Event.stream < 0 || m.Obs.Event.stream >= Array.length streams then
            fail "event references unknown stream %d" m.Obs.Event.stream
          else kept.(m.Obs.Event.stream) <- kept.(m.Obs.Event.stream) + 1)
        export.Obs.Codec.events;
      Array.iteri
        (fun i (s : Obs.Codec.stream_info) ->
          if kept.(i) + s.Obs.Codec.dropped <> s.Obs.Codec.emitted then
            fail "stream %d (%s): kept %d + dropped %d <> emitted %d" i s.Obs.Codec.label kept.(i)
              s.Obs.Codec.dropped s.Obs.Codec.emitted;
          let by_class_total = Array.fold_left ( + ) 0 s.Obs.Codec.by_class in
          if by_class_total <> s.Obs.Codec.emitted then
            fail "stream %d (%s): by-class totals %d <> emitted %d" i s.Obs.Codec.label
              by_class_total s.Obs.Codec.emitted)
        streams;
      let rec sorted = function
        | a :: (b :: _ as rest) ->
            if Obs.Event.compare_merged a b > 0 then fail "events out of merge order";
            sorted rest
        | _ -> ()
      in
      sorted export.Obs.Codec.events;
      (match !failures with
      | [] ->
          Printf.printf "ok: %d streams, %d events kept, invariants hold\n"
            (Array.length streams)
            (List.length export.Obs.Codec.events);
          (* Drops do not break any invariant (the accounting identity
             includes them) but they mean the kept counts undercount. *)
          let dropped =
            Array.fold_left (fun acc s -> acc + s.Obs.Codec.dropped) 0 streams
          in
          if dropped > 0 then
            Printf.printf
              "note: %d events were dropped by full rings — kept counts undercount; raise \
               --trace-cap for a complete capture\n"
              dropped
      | msgs ->
          List.iter (fun m -> prerr_endline ("xen-numa-trace: " ^ m)) (List.rev msgs);
          exit 1)

let check_cmd =
  let doc = "Validate a trace file's accounting and ordering invariants" in
  Cmd.v (Cmd.info "check" ~doc) Term.(const check $ file_arg)

(* ------------------------------------------------------------------ *)
(* query: streaming filter + aggregation over either codec             *)
(* ------------------------------------------------------------------ *)

let classes_arg =
  Arg.(value & opt (some string) None
       & info [ "class" ] ~docv:"CLASSES"
           ~doc:"Comma-separated event classes to keep (e.g. \
                 $(b,page_fault,migrate_start)).  An unknown name lists every \
                 valid class.  Default: all classes.")

let dom_arg =
  Arg.(value & opt (some int) None
       & info [ "dom" ] ~docv:"ID" ~doc:"Keep events of this domain only.")

let vcpu_arg =
  Arg.(value & opt (some int) None
       & info [ "vcpu" ] ~docv:"ID" ~doc:"Keep events of this vCPU only.")

let node_arg =
  Arg.(value & opt (some int) None
       & info [ "node" ] ~docv:"ID" ~doc:"Keep events tagged with this NUMA node only.")

let epochs_arg =
  Arg.(value & opt (some string) None
       & info [ "epochs" ] ~docv:"WINDOW"
           ~doc:"Epoch window: a single $(i,EPOCH) or an inclusive $(i,LO-HI) \
                 range (e.g. $(b,10-20)).")

let top_arg =
  Arg.(value & opt int 10
       & info [ "top" ] ~docv:"K" ~doc:"Hot-frame list length (default 10).")

let format_arg =
  Arg.(value & opt (enum [ ("table", `Table); ("jsonl", `Jsonl) ]) `Table
       & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,table) or $(b,jsonl).")

let heatmap_arg =
  Arg.(value & opt (some string) None
       & info [ "heatmap" ] ~docv:"FILE"
           ~doc:"Also write a per-(epoch, node) matched-event heatmap to $(docv) as CSV.")

let query classes dom vcpu node epochs top format heatmap path =
  let die msg =
    prerr_endline ("xen-numa-trace: " ^ msg);
    exit 1
  in
  if top < 1 then die "--top must be positive";
  let classes =
    match classes with
    | None -> []
    | Some spec -> (
        match Obs.Query.parse_classes spec with Ok cs -> cs | Error msg -> die msg)
  in
  let epoch_lo, epoch_hi =
    match epochs with
    | None -> (None, None)
    | Some spec -> (
        match Obs.Query.parse_epochs spec with
        | Ok (lo, hi) -> (Some lo, Some hi)
        | Error msg -> die msg)
  in
  let f =
    Obs.Query.filter ~classes ?domain:dom ?vcpu ?node ?epoch_lo ?epoch_hi ()
  in
  match Obs.Query.run ~top f path with
  | exception Sys_error msg -> die msg
  | exception Obs.Codec.Corrupt msg -> die (Printf.sprintf "%s: corrupt trace: %s" path msg)
  | result -> (
      (match format with
      | `Table -> print_string (Obs.Query.render_table result)
      | `Jsonl -> print_string (Obs.Query.render_jsonl result));
      match heatmap with
      | None -> ()
      | Some file -> (
          match open_out file with
          | exception Sys_error msg -> die msg
          | oc ->
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () -> output_string oc (Obs.Query.heatmap_csv result));
              (* stderr: keeps stdout parseable (and byte-identical across
                 captures that differ only in the CSV destination). *)
              Printf.eprintf "heatmap written to %s\n" file))

let query_cmd =
  let doc =
    "Filter and aggregate a trace in one bounded-memory streaming pass \
     (count per class, rate per epoch, top-k hot frames, optional heatmap CSV)"
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const query $ classes_arg $ dom_arg $ vcpu_arg $ node_arg $ epochs_arg $ top_arg
          $ format_arg $ heatmap_arg $ file_arg)

let main =
  let doc = "Summarise xen-numa-sim event traces" in
  Cmd.group (Cmd.info "xen-numa-trace" ~doc) [ summary_cmd; check_cmd; query_cmd ]

let () = exit (Cmd.eval main)
