(* xen-numa-trace: xenalyze-style summariser and checker for trace
   files produced by xen-numa-sim --trace (JSONL or binary). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | data -> (
      match Obs.Codec.read data with
      | export -> Ok export
      | exception Obs.Codec.Corrupt msg ->
          Error (Printf.sprintf "%s: corrupt trace: %s" path msg)
      | exception Obs.Json.Parse_error msg ->
          Error (Printf.sprintf "%s: bad JSON: %s" path msg))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace file to read.")

let timeline_arg =
  Arg.(value & opt int 24
       & info [ "timeline" ] ~docv:"ROWS" ~doc:"Epoch-timeline rows to print (default 24).")

let summary rows path =
  match load path with
  | Error msg ->
      prerr_endline ("xen-numa-trace: " ^ msg);
      exit 1
  | Ok export -> print_string (Obs.Summary.render ~timeline_rows:rows (Obs.Summary.of_export export))

let summary_cmd =
  let doc = "Summarise a trace: per-class counts, inter-arrival stats, epoch timeline" in
  Cmd.v (Cmd.info "summary" ~doc) Term.(const summary $ timeline_arg $ file_arg)

(* Structural validation beyond what the codec already rejects: the
   ring accounting invariant per stream and the merge-order contract. *)
let check path =
  match load path with
  | Error msg ->
      prerr_endline ("xen-numa-trace: " ^ msg);
      exit 1
  | Ok export ->
      let streams = export.Obs.Codec.streams in
      let kept = Array.make (Array.length streams) 0 in
      let failures = ref [] in
      let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
      List.iter
        (fun (m : Obs.Event.merged) ->
          if m.Obs.Event.stream < 0 || m.Obs.Event.stream >= Array.length streams then
            fail "event references unknown stream %d" m.Obs.Event.stream
          else kept.(m.Obs.Event.stream) <- kept.(m.Obs.Event.stream) + 1)
        export.Obs.Codec.events;
      Array.iteri
        (fun i (s : Obs.Codec.stream_info) ->
          if kept.(i) + s.Obs.Codec.dropped <> s.Obs.Codec.emitted then
            fail "stream %d (%s): kept %d + dropped %d <> emitted %d" i s.Obs.Codec.label kept.(i)
              s.Obs.Codec.dropped s.Obs.Codec.emitted;
          let by_class_total = Array.fold_left ( + ) 0 s.Obs.Codec.by_class in
          if by_class_total <> s.Obs.Codec.emitted then
            fail "stream %d (%s): by-class totals %d <> emitted %d" i s.Obs.Codec.label
              by_class_total s.Obs.Codec.emitted)
        streams;
      let rec sorted = function
        | a :: (b :: _ as rest) ->
            if Obs.Event.compare_merged a b > 0 then fail "events out of merge order";
            sorted rest
        | _ -> ()
      in
      sorted export.Obs.Codec.events;
      (match !failures with
      | [] ->
          Printf.printf "ok: %d streams, %d events kept, invariants hold\n"
            (Array.length streams)
            (List.length export.Obs.Codec.events)
      | msgs ->
          List.iter (fun m -> prerr_endline ("xen-numa-trace: " ^ m)) (List.rev msgs);
          exit 1)

let check_cmd =
  let doc = "Validate a trace file's accounting and ordering invariants" in
  Cmd.v (Cmd.info "check" ~doc) Term.(const check $ file_arg)

let main =
  let doc = "Summarise xen-numa-sim event traces" in
  Cmd.group (Cmd.info "xen-numa-trace" ~doc) [ summary_cmd; check_cmd ]

let () = exit (Cmd.eval main)
